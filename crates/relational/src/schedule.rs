//! The cube-task scheduler and the **single wave-orchestration layer**:
//! fused scan passes as the unit of physical work.
//!
//! The paper's cost model (§5/§6) is dominated by executing merged CUBE
//! queries, and the claims of one document — let alone the documents of a
//! batch — need many *independent* cubes. This module owns the whole
//! execution shape above the cube kernel:
//!
//! * a [`CubeTask`] owns one [`CubeQuery`] plus the single-flight
//!   [`FlightGuard`]s it must publish into the shared
//!   [`EvalCache`] when it finishes;
//! * a [`ScanGroup`] is the schedulable unit: **all tasks of one wave that
//!   reference the same table scope, fused into one row pass** that feeds
//!   every member's grid ([`crate::cube::execute_fused_in`]). Fusion is
//!   purely physical — each member's result, stats, and cache publication
//!   are exactly those of a solo sequential execution;
//! * a [`CubeScheduler`] is a shared work queue of scan groups drained
//!   cooperatively by scoped worker threads. Wave submitters *help* drain
//!   the queue until their own tasks are done ([`CubeScheduler::drive`]),
//!   so a submitter is never idle while work is pending and a pool of one
//!   degenerates to exact sequential execution; batch verification shares
//!   **one** scheduler across all documents ([`CubeScheduler::run_worker`]);
//! * [`run_requests`] is the **one** implementation of the
//!   probe → bundle → fuse → execute → collect-with-poison-retry protocol.
//!   Both `core::evaluate::Evaluator::evaluate_all` and
//!   `MergePlan::execute_*`(crate::merge::MergePlan) drive their waves
//!   through it, so the single-flight protocol exists exactly once.
//!
//! # ScanGroup fusion invariants
//!
//! Fused passes must not perturb anything the dedup gate measures:
//!
//! * **Canonical grid-update order.** A scan group's members are kept in
//!   task-submission order and the fused kernel updates their grids in
//!   that order, each grid seeing the rows in relation order — so every
//!   member's f64 accumulation sequence, and therefore every report, is
//!   bit-identical to the unfused path at any worker count (1/2/4/8).
//! * **Single-flight publication per cube key, unchanged.** Fusion never
//!   widens or splits a task's aggregate bundle; each member still
//!   publishes exactly the keys it claimed, and a failed pass poisons
//!   exactly its members' flights.
//! * **Atomic wave probes.** A wave claims every key of every one of its
//!   cube groups under one planning-lock hold
//!   ([`EvalCache::flight_batch_many`](crate::cache::EvalCache::flight_batch_many)),
//!   so racing workers can never split one wave's miss set between them:
//!   whichever wave enters the planning lock first wins its *entire* miss
//!   set as one fused pass per table scope. Pass formation is
//!   planning-time (per wave, per scope), so `scan_passes` — and the
//!   pass-level `rows_scanned` — depend only on which waves create at
//!   least one task per scope, never on how tasks interleave inside the
//!   scheduler. That count is exactly worker-count-independent whenever
//!   each wave's miss set per scope is either fully covered by one
//!   concurrent wave (all-or-nothing: identical documents, repeat EM
//!   iterations) or retains at least one key no concurrent wave covers
//!   (distinct documents) — the shape of real document batches, where
//!   every document's claims contribute document-specific cube groups.
//!   The CI `dedup-gate` asserts the equality end to end at 1 vs 4
//!   workers (and the pipeline unit tests at 1/2/4/8) on the committed
//!   corpora; a batch of documents whose miss sets *partially* overlap
//!   with no wave-unique remainder could legitimately shift a pass
//!   between waves, which the gate would surface rather than hide.
//!
//! # Partition-parallel passes
//!
//! A pass over a single-table identity scope does not run as one
//! monolithic scan: when the relation spans at least two fixed partitions
//! ([`crate::block::partition_ranges`], a pure function of row count and
//! the configured partition span — never of worker count), the worker
//! that pops the pass *explodes* it into one queued subtask per
//! partition. Any worker steals subtasks; each scans its block range into
//! partition-local grids ([`crate::cube`]'s shared fused driver); the
//! **last** finisher folds the partition grids in ascending partition
//! order and settles every member. Because the in-process fused path runs
//! the *same* partition shape and the *same* ascending merge
//! ([`crate::cube::execute_fused_in`] with the same span), a fanned-out
//! pass is bit-identical to a sequential one at any worker count and any
//! completion order — determinism holds by construction, not by keeping
//! scans sequential. Joined (materialized) scopes still execute as one
//! sequential subtask, but partition internally through the same driver,
//! so their results and partition counters are identical too. The only
//! run-to-run-varying stat is the
//! [`crate::cube::CubeStats::partition_parallelism`] gauge (distinct
//! workers that touched the pass).
//!
//! A subtask that panics (worker death mid-partition) registers the
//! failure, **fails every member task immediately** — poisoning their
//! flights and waking their waiters, so nobody wedges on a merge barrier
//! that will never fill — and re-raises on its own thread; remaining
//! subtasks of the dead pass drain as no-ops.
//!
//! # Snapshot pinning & patch passes
//!
//! Every queued work item embeds the `Arc<Database>` snapshot its wave was
//! planned against, and executes against exactly that snapshot — never
//! against whatever database the executing worker happens to hold. A
//! long-lived worker pool can therefore drain passes of documents pinned
//! at *different* watermarks (a streaming service that appends rows
//! between documents) without any pass reading rows its wave never
//! claimed: the wave's cache stamps `(version, watermark)` and its scans
//! are taken from the same pinned snapshot.
//!
//! When a wave's probe finds a **stale** resident grid whose cube captured
//! a [`ScanCheckpoint`], the won flight carries it as a patch base and the
//! miss executes as a **patch pass**
//! ([`crate::cube::execute_patches_in`]): clone the checkpointed prefix
//! folds, scan only the appended partitions, publish at the new watermark.
//! Patch passes fuse with each other — same table scope, same checkpoint
//! prefix shape — so a wave whose stale grids all resume from one boundary
//! scans the appended tail once; they are never fused with cold scans and
//! never exploded into partition subtasks (the delta is small by
//! construction), and they publish through the same single-flight
//! protocol, so concurrent re-verifies dedup patch work exactly like full
//! scans.
//!
//! # Deadlock freedom
//!
//! The submit protocol is: probe the cache (claiming flights), submit every
//! task won, **then** drive the queue until the submitted tasks finish, and
//! only after that block on [`FlightWaiter`]s owned by other threads. A
//! thread therefore never waits on a flight before its own tasks are
//! published-or-executed, and every flight being waited on belongs to a
//! task that is either queued (any driver can pick it up) or already
//! running; a poisoned flight wakes its waiters for a retry rather than
//! wedging them.

use crate::block::{partition_ranges, DEFAULT_PARTITION_BLOCKS};
use crate::cache::{
    CacheKey, CachedSlice, EvalCache, Flight, FlightGuard, FlightRequest, FlightWaiter,
};
use crate::cube::{
    execute_fused_in, execute_patches_in, merge_fused_partitions, patchable_function,
    scan_fused_partition, validate_fused, CubeOptions, CubeQuery, CubeResult, GridArena,
    PartitionGrids, ScanCheckpoint,
};
use crate::database::{ColumnRef, Database};
use crate::error::{RelationalError, Result};
use crate::join::JoinedRelation;
use crate::query::{AggColumn, AggFunction};
use crate::value::Value;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

fn lock<'m, T>(m: &'m Mutex<T>) -> std::sync::MutexGuard<'m, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[derive(Debug)]
enum TaskState {
    Pending,
    Done(Arc<CubeResult>),
    Failed(RelationalError),
}

#[derive(Debug)]
struct TaskCell {
    state: Mutex<TaskState>,
}

/// One schedulable cube execution, plus the cache publications it owes.
#[derive(Debug)]
pub struct CubeTask {
    cube: CubeQuery,
    /// `(aggregate position, function, guard)` per single-flight key this
    /// task won; empty when evaluation runs uncached.
    publish: Vec<(usize, AggFunction, FlightGuard)>,
    /// A stale resident grid's checkpoint this task resumes from instead
    /// of cold-scanning (`Some` makes this a patch pass: always a
    /// singleton, never fused or exploded). The task's `cube` is the
    /// checkpoint's cube, so publish positions index its aggregate set.
    patch: Option<Arc<ScanCheckpoint>>,
    cell: Arc<TaskCell>,
}

/// Completion handle for one submitted [`CubeTask`].
#[derive(Debug)]
pub struct TaskHandle {
    cell: Arc<TaskCell>,
}

impl TaskHandle {
    /// Has the task settled (successfully or not)?
    pub fn is_done(&self) -> bool {
        !matches!(*lock(&self.cell.state), TaskState::Pending)
    }

    /// The task's result. Panics if called before the task settled — obtain
    /// completion via [`CubeScheduler::drive`] first.
    pub fn result(&self) -> Result<Arc<CubeResult>> {
        match &*lock(&self.cell.state) {
            TaskState::Pending => panic!("task result taken before completion"),
            TaskState::Done(result) => Ok(result.clone()),
            TaskState::Failed(e) => Err(e.clone()),
        }
    }

    /// [`TaskHandle::result`], consuming the handle: the unique-owner path
    /// moves the settled state out instead of cloning the `Arc`.
    pub fn into_result(self) -> Result<Arc<CubeResult>> {
        match Arc::try_unwrap(self.cell) {
            Ok(cell) => match cell.state.into_inner().unwrap_or_else(|e| e.into_inner()) {
                TaskState::Pending => panic!("task result taken before completion"),
                TaskState::Done(result) => Ok(result),
                TaskState::Failed(e) => Err(e),
            },
            Err(cell) => TaskHandle { cell }.result(),
        }
    }
}

impl CubeTask {
    /// Package a cube with the flight guards it must publish. The guards'
    /// positions index into `cube.aggregates`.
    pub fn new(
        cube: CubeQuery,
        publish: Vec<(usize, AggFunction, FlightGuard)>,
    ) -> (CubeTask, TaskHandle) {
        let cell = Arc::new(TaskCell {
            state: Mutex::new(TaskState::Pending),
        });
        (
            CubeTask {
                cube,
                publish,
                patch: None,
                cell: cell.clone(),
            },
            TaskHandle { cell },
        )
    }

    /// A patch pass: resume `checkpoint`'s fold over just the appended
    /// rows instead of cold-scanning. `cube` must be the checkpoint's cube
    /// (the patched result carries its aggregate set), and the guards'
    /// positions index into it.
    pub fn patched(
        cube: CubeQuery,
        publish: Vec<(usize, AggFunction, FlightGuard)>,
        checkpoint: Arc<ScanCheckpoint>,
    ) -> (CubeTask, TaskHandle) {
        let (mut task, handle) = CubeTask::new(cube, publish);
        task.patch = Some(checkpoint);
        (task, handle)
    }

    /// Settle with a finished result: publish every won flight first,
    /// stamped at `rows` — the snapshot watermark the wave probed at.
    fn complete(self, result: CubeResult, rows: u64) {
        let result = Arc::new(result);
        for (pos, function, guard) in self.publish {
            guard.fulfill(crate::cache::CachedSlice::new(
                result.clone(),
                pos,
                function,
                rows,
            ));
        }
        *lock(&self.cell.state) = TaskState::Done(result);
    }

    /// Settle with an error; the dropped guards poison this task's flights
    /// so waiters retry.
    fn fail(self, e: RelationalError) {
        drop(self.publish);
        *lock(&self.cell.state) = TaskState::Failed(e);
    }
}

/// One fused row pass: every member task's cube references the same table
/// scope, and one scan of the joined relation feeds all their grids. The
/// member list keeps task-submission order (see the module docs).
#[derive(Debug)]
pub struct ScanGroup {
    members: Vec<CubeTask>,
    /// Storage blocks per fixed partition (0 disables partitioning). Part
    /// of the determinism contract's inputs: the partition shape is a pure
    /// function of this span and the row count, so every pass over the
    /// same data with the same span yields bit-identical reports whether
    /// it runs in-process, fanned out, or sequentially.
    partition_blocks: usize,
}

/// The pass-formation key of one task: its table scope, plus — for patch
/// tasks — the checkpoint's prefix shape ([`ScanCheckpoint::fuse_identity`]).
/// Patches therefore fuse only with patches resuming from the very same
/// boundary/span/cap, and never with cold members (a cold member fused
/// into a patch pass would see a truncated relation; a mismatched patch
/// would merge the wrong tail). Within those bounds patches fuse like any
/// other task: a wave whose stale grids all resume from one boundary
/// scans the appended tail once, not once per grid.
type FusionKey = (Vec<usize>, Option<(usize, usize, usize)>);

/// Partition `tasks` into fusion groups: `(table scope, member indices)`
/// in first-seen scope order, members in submission order. With `fuse`
/// off every task is its own singleton group (the unfused PR 3 shape).
/// This is the **one** implementation of the pass-formation rule — both
/// [`ScanGroup::fuse`] and [`run_requests`] go through it, so the
/// documented invariants cannot silently diverge between the test surface
/// and the production path.
fn fusion_partition(tasks: &[CubeTask], fuse: bool) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut partition: Vec<(FusionKey, Vec<usize>)> = Vec::new();
    for (i, task) in tasks.iter().enumerate() {
        let key = (
            task.cube.tables_referenced(),
            task.patch.as_ref().map(|cp| cp.fuse_identity()),
        );
        match partition.iter_mut().find(|(k, _)| fuse && *k == key) {
            Some((_, members)) => members.push(i),
            None => partition.push((key, vec![i])),
        }
    }
    partition
        .into_iter()
        .map(|((scope, _), members)| (scope, members))
        .collect()
}

impl ScanGroup {
    /// Build the scan groups for one fusion partition, consuming the
    /// tasks. Each task must appear in exactly one partition entry.
    fn assemble(tasks: Vec<CubeTask>, partition: &[(Vec<usize>, Vec<usize>)]) -> Vec<ScanGroup> {
        let mut slots: Vec<Option<CubeTask>> = tasks.into_iter().map(Some).collect();
        partition
            .iter()
            .map(|(_, members)| ScanGroup {
                members: members
                    .iter()
                    .map(|&i| slots[i].take().expect("each task in one group"))
                    .collect(),
                partition_blocks: DEFAULT_PARTITION_BLOCKS,
            })
            .collect()
    }

    /// Fuse tasks that reference the same table scope into scan groups,
    /// preserving submission order both across groups (first-seen scope
    /// order) and within each group.
    pub fn fuse(tasks: Vec<CubeTask>) -> Vec<ScanGroup> {
        let partition = fusion_partition(&tasks, true);
        ScanGroup::assemble(tasks, &partition)
    }

    /// One group per task — the unfused PR 3 execution shape, kept for
    /// A/B comparison (`fuse_scans = false`) and for retry singletons.
    pub fn singletons(tasks: Vec<CubeTask>) -> Vec<ScanGroup> {
        let partition = fusion_partition(&tasks, false);
        ScanGroup::assemble(tasks, &partition)
    }

    /// Override the partition span for this pass (storage blocks per
    /// partition; 0 disables partitioning). Results are unaffected as long
    /// as every path uses the same span — it shapes the deterministic
    /// partition/merge tree, not the semantics.
    pub fn set_partition_blocks(&mut self, blocks: usize) {
        self.partition_blocks = blocks;
    }

    /// Number of member tasks fused into this pass.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Run the fused pass sequentially: validate members, scan once,
    /// publish and settle each member. A member that fails validation
    /// settles (and poisons its flights) without stopping its siblings; a
    /// failed scan fails every member. A scan that *panics* still fails
    /// every member first — settling their tasks and poisoning their
    /// flights so no waiter wedges — and hands the panic payload back for
    /// the executing thread to re-raise.
    fn execute(
        self,
        db: &Database,
        arena: Option<&GridArena>,
    ) -> Option<Box<dyn std::any::Any + Send>> {
        let rows = db.watermark();
        let mut valid: Vec<CubeTask> = Vec::with_capacity(self.members.len());
        for task in self.members {
            match task.cube.validate() {
                Ok(()) => valid.push(task),
                Err(e) => task.fail(e),
            }
        }
        if valid.is_empty() {
            return None;
        }
        let options = CubeOptions {
            partition_blocks: self.partition_blocks,
            ..CubeOptions::default()
        };
        if valid[0].patch.is_some() {
            // Patch pass: resume every member's checkpointed fold over the
            // appended partitions in one tail scan (falls back to a fused
            // cold scan inside `execute_patches_in` if the checkpoints no
            // longer apply). Fusion keyed the group by checkpoint prefix
            // shape, so the members are homogeneous by construction.
            debug_assert!(
                valid.iter().all(|t| t.patch.is_some()),
                "patch passes never mix with cold members"
            );
            let checkpoints: Vec<Arc<ScanCheckpoint>> = valid
                .iter()
                .map(|t| t.patch.clone().expect("checked above"))
                .collect();
            let refs: Vec<&ScanCheckpoint> = checkpoints.iter().map(Arc::as_ref).collect();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                execute_patches_in(db, &refs, &options, arena)
            }));
            return match outcome {
                Ok(Ok(results)) => {
                    for (task, result) in valid.into_iter().zip(results) {
                        task.complete(result, rows);
                    }
                    None
                }
                Ok(Err(e)) => {
                    for task in valid {
                        task.fail(e.clone());
                    }
                    None
                }
                Err(payload) => {
                    let e = RelationalError::Execution("patch pass panicked mid-execution".into());
                    for task in valid {
                        task.fail(e.clone());
                    }
                    Some(payload)
                }
            };
        }
        debug_assert!(
            valid.iter().all(|t| t.patch.is_none()),
            "patch passes never mix with cold members"
        );
        let cubes: Vec<&CubeQuery> = valid.iter().map(|t| &t.cube).collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_fused_in(db, &cubes, &options, arena)
        }));
        match outcome {
            Ok(Ok(results)) => {
                for (task, result) in valid.into_iter().zip(results) {
                    task.complete(result, rows);
                }
                None
            }
            Ok(Err(e)) => {
                for task in valid {
                    task.fail(e.clone());
                }
                None
            }
            Err(payload) => {
                let e = RelationalError::Execution("scan pass panicked mid-execution".into());
                for task in valid {
                    task.fail(e.clone());
                }
                Some(payload)
            }
        }
    }
}

/// One unit of queued scheduler work: a whole fused pass, or one
/// partition subtask of an exploded pass. Each item pins the database
/// snapshot its wave was planned against, so a shared worker pool can
/// drain passes of waves pinned at different watermarks without any pass
/// reading rows its wave never claimed.
enum WorkItem {
    Pass { group: ScanGroup, db: Arc<Database> },
    Part { job: Arc<PartitionJob>, idx: usize },
}

/// A fused pass exploded into per-partition subtasks, shared by the
/// workers that steal them. The member tasks live inside the mutex so
/// exactly one worker settles them: the first failing subtask (fails all
/// members immediately — no hung merge barrier) or the last successful
/// one (ascending-order merge).
struct PartitionJob {
    /// The snapshot this pass's wave was planned against; every subtask
    /// scans it, whatever database the stealing worker otherwise serves.
    db: Arc<Database>,
    /// Owned clones of the member cubes, in member (task-submission)
    /// order; subtasks need them while the tasks sit in the mutex.
    cubes: Vec<CubeQuery>,
    /// The members' shared single-table scope (`ScanGroup` fusion
    /// invariant), used to rebuild the identity relation per subtask.
    scope: Vec<usize>,
    /// Fixed partition ranges, ascending; `idx` indexes this.
    ranges: Vec<std::ops::Range<usize>>,
    options: CubeOptions,
    state: Mutex<PartState>,
}

struct PartState {
    /// Taken exactly once — by the first failure or the merging finisher.
    tasks: Option<Vec<CubeTask>>,
    /// Finished partition grids, indexed by partition — completion order
    /// cannot perturb the ascending merge.
    slots: Vec<Option<PartitionGrids>>,
    completed: usize,
    failed: bool,
    /// Distinct workers that ran at least one subtask; its size is the
    /// `partition_parallelism` gauge.
    workers: Vec<std::thread::ThreadId>,
}

impl PartitionJob {
    /// Run partition `idx`: scan its block range into partition-local
    /// grids, deposit them, and — as the last finisher — merge ascending
    /// and settle every member. Any panic (chaos hooks fire inside the
    /// scan exactly as in-process) fails all members *before* the payload
    /// is handed back for re-raising, so waiters are woken, not wedged.
    fn run_subtask(
        self: &Arc<Self>,
        idx: usize,
        arena: Option<&GridArena>,
    ) -> Option<Box<dyn std::any::Any + Send>> {
        let db: &Database = &self.db;
        if lock(&self.state).failed {
            return None; // a sibling already failed the whole pass
        }
        let relation = match JoinedRelation::for_tables(db, &self.scope) {
            Ok(r) => r,
            Err(e) => {
                self.fail_all(e);
                return None;
            }
        };
        let cubes: Vec<&CubeQuery> = self.cubes.iter().collect();
        let scanned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scan_fused_partition(
                db,
                &relation,
                &cubes,
                &self.options,
                arena,
                self.ranges[idx].clone(),
            )
        }));
        let grids = match scanned {
            Ok(grids) => grids,
            Err(payload) => {
                self.fail_all(RelationalError::Execution(
                    "partition subtask panicked mid-scan".into(),
                ));
                return Some(payload);
            }
        };
        let (tasks, parts, parallelism) = {
            let mut state = lock(&self.state);
            if state.failed {
                return None;
            }
            let me = std::thread::current().id();
            if !state.workers.contains(&me) {
                state.workers.push(me);
            }
            state.slots[idx] = Some(grids);
            state.completed += 1;
            if state.completed < self.ranges.len() {
                return None;
            }
            // Every partition succeeded (a panic never increments
            // `completed`), so this worker owns the merge.
            let tasks = state
                .tasks
                .take()
                .expect("members unsettled until the merge");
            let parts: Vec<PartitionGrids> = state
                .slots
                .iter_mut()
                .map(|slot| slot.take().expect("every partition deposited"))
                .collect();
            (tasks, parts, state.workers.len() as u32)
        };
        let merged = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            merge_fused_partitions(
                db,
                &relation,
                &cubes,
                &self.options,
                arena,
                parts,
                parallelism,
            )
        }));
        match merged {
            Ok(results) => {
                let rows = db.watermark();
                for (task, result) in tasks.into_iter().zip(results) {
                    task.complete(result, rows);
                }
                None
            }
            Err(payload) => {
                let e = RelationalError::Execution("partition merge panicked".into());
                for task in tasks {
                    task.fail(e.clone());
                }
                Some(payload)
            }
        }
    }

    /// First-failure protocol: mark the job failed and settle every member
    /// task at once (poisoning their flights, waking their waiters), even
    /// though sibling subtasks may still be queued — they drain as no-ops.
    fn fail_all(&self, e: RelationalError) {
        let tasks = {
            let mut state = lock(&self.state);
            state.failed = true;
            state.tasks.take()
        };
        if let Some(tasks) = tasks {
            for task in tasks {
                task.fail(e.clone());
            }
        }
    }
}

#[derive(Default)]
struct SchedState {
    queue: VecDeque<WorkItem>,
    closed: bool,
}

/// A shared FIFO of [`ScanGroup`]s — and the partition subtasks they
/// explode into — drained cooperatively by scoped workers.
#[derive(Default)]
pub struct CubeScheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl std::fmt::Debug for CubeScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = lock(&self.state);
        f.debug_struct("CubeScheduler")
            .field("queued", &state.queue.len())
            .field("closed", &state.closed)
            .finish()
    }
}

impl CubeScheduler {
    pub fn new() -> CubeScheduler {
        CubeScheduler::default()
    }

    /// Enqueue a wave of fused scan groups, each pinned to `db` — the
    /// snapshot the wave was planned (and its cache stamps taken) against
    /// — and wake every worker.
    pub fn submit(&self, db: &Arc<Database>, groups: Vec<ScanGroup>) {
        if groups.is_empty() {
            return;
        }
        {
            let mut state = lock(&self.state);
            debug_assert!(!state.closed, "submit after close");
            state
                .queue
                .extend(groups.into_iter().map(|group| WorkItem::Pass {
                    group,
                    db: db.clone(),
                }));
        }
        self.cv.notify_all();
    }

    /// Execute queued passes — anyone's, not just the caller's, each
    /// against its own pinned snapshot — until every handle in `waiting`
    /// has settled. With no other workers this is exact sequential
    /// execution by the caller.
    pub fn drive(&self, arena: Option<&GridArena>, waiting: &[TaskHandle]) {
        loop {
            let item = {
                let mut state = lock(&self.state);
                loop {
                    if waiting.iter().all(TaskHandle::is_done) {
                        return;
                    }
                    if let Some(item) = state.queue.pop_front() {
                        break item;
                    }
                    // Our tasks are running on other workers: sleep until a
                    // completion or a new submission.
                    state = self
                        .cv
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            self.run_item(item, arena);
        }
    }

    /// Helper loop for workers with no document of their own: execute
    /// passes until the scheduler is closed and drained.
    pub fn run_worker(&self, arena: Option<&GridArena>) {
        self.help_until(arena, || false);
    }

    /// Helper loop for an **open-ended** stream of waves: execute queued
    /// passes; whenever the queue is empty, return if `recall()` is true
    /// (or the scheduler is closed), otherwise sleep until new work — or a
    /// [`CubeScheduler::kick`] announcing that `recall`'s answer may have
    /// changed — arrives.
    ///
    /// This is what lets a long-lived worker pool serve two queues with
    /// one blocking point: a streaming front-end parks idle workers here
    /// so they drain *other* documents' cube passes, and recalls them
    /// (flip the predicate, then `kick`) the moment a new document lands
    /// in the intake queue. `recall` is evaluated under the scheduler
    /// lock, so a kick issued after a state change can never be lost
    /// between the predicate check and the wait.
    pub fn help_until(&self, arena: Option<&GridArena>, recall: impl Fn() -> bool) {
        loop {
            let item = {
                let mut state = lock(&self.state);
                loop {
                    if let Some(item) = state.queue.pop_front() {
                        break item;
                    }
                    if state.closed || recall() {
                        return;
                    }
                    state = self
                        .cv
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            self.run_item(item, arena);
        }
    }

    /// Wake every parked worker so it re-evaluates its wait condition
    /// ([`CubeScheduler::help_until`]'s `recall`, a driver's handle set).
    /// Touches the scheduler lock before notifying, so a state change made
    /// before the kick is visible to every woken waiter.
    pub fn kick(&self) {
        drop(lock(&self.state));
        self.cv.notify_all();
    }

    /// No further submissions will arrive; drain and release the workers.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.cv.notify_all();
    }

    fn run_item(&self, item: WorkItem, arena: Option<&GridArena>) {
        let payload = match item {
            WorkItem::Pass { group, db } => match self.try_fan_out(group, &db) {
                // Exploded: the subtasks are queued; this worker loops
                // around and starts stealing them like everyone else.
                None => None,
                Some(group) => group.execute(&db, arena),
            },
            WorkItem::Part { job, idx } => job.run_subtask(idx, arena),
        };
        // Touch the scheduler lock before notifying so a driver cannot
        // check its handles, miss this completion, and sleep through the
        // wakeup (the completion happens-before our lock acquisition).
        drop(lock(&self.state));
        self.cv.notify_all();
        if let Some(payload) = payload {
            // Every member task already settled (Failed) and its waiters
            // were woken, so nobody can wedge on this pass — re-raise so
            // the executing thread observes the panic (a supervised stream
            // worker dies and is respawned; a scoped-pool caller unwinds
            // its own document).
            std::panic::resume_unwind(payload);
        }
    }

    /// Explode an eligible pass into queued per-partition subtasks.
    /// Ineligible passes come back to run in-process — which partitions
    /// internally through the same driver, so eligibility affects only
    /// *who* scans, never any result or partition counter.
    fn try_fan_out(&self, group: ScanGroup, db: &Arc<Database>) -> Option<ScanGroup> {
        match Self::explode(group, db) {
            Err(group) => Some(group),
            Ok(parts) => {
                {
                    let mut state = lock(&self.state);
                    // Subtasks go to the *front* so the fleet finishes the
                    // exploded pass (whose waiters are already parked)
                    // before opening new passes; ascending indices keep
                    // steal order natural, though any order yields the
                    // same merge.
                    for item in parts.into_iter().rev() {
                        state.queue.push_front(item);
                    }
                }
                self.cv.notify_all();
                None
            }
        }
    }

    /// Split one pass into its partition subtask items (ascending index
    /// order), or give the group back if it isn't eligible. Eligible
    /// means: partitioning on, not a patch pass (the delta is small by
    /// construction and must fold onto the checkpointed prefix
    /// sequentially), a single-table identity scope (subtasks rebuild the
    /// relation for pennies; a materialized join would be rebuilt once per
    /// subtask), valid members, and at least two partitions.
    fn explode(
        group: ScanGroup,
        db: &Arc<Database>,
    ) -> std::result::Result<Vec<WorkItem>, ScanGroup> {
        if group.partition_blocks == 0 || group.members.is_empty() {
            return Err(group);
        }
        if group.members.iter().any(|t| t.patch.is_some()) {
            return Err(group);
        }
        let scope = group.members[0].cube.tables_referenced();
        if scope.len() != 1 {
            return Err(group);
        }
        {
            let cubes: Vec<&CubeQuery> = group.members.iter().map(|t| &t.cube).collect();
            if validate_fused(&cubes).is_err() {
                return Err(group); // in-process path settles the invalid members
            }
        }
        let Ok(relation) = JoinedRelation::for_tables(db, &scope) else {
            return Err(group);
        };
        if !relation.is_identity() {
            return Err(group);
        }
        let ranges = partition_ranges(relation.len(), group.partition_blocks);
        if ranges.len() < 2 {
            return Err(group);
        }
        let slots = ranges.iter().map(|_| None).collect();
        let job = Arc::new(PartitionJob {
            db: db.clone(),
            cubes: group.members.iter().map(|t| t.cube.clone()).collect(),
            scope,
            ranges,
            options: CubeOptions {
                partition_blocks: group.partition_blocks,
                ..CubeOptions::default()
            },
            state: Mutex::new(PartState {
                tasks: Some(group.members),
                slots,
                completed: 0,
                failed: false,
                workers: Vec::new(),
            }),
        });
        Ok((0..job.ranges.len())
            .map(|idx| WorkItem::Part {
                job: job.clone(),
                idx,
            })
            .collect())
    }

    /// Explode every queued pass in place, preserving submission order,
    /// and return the resulting work-item count. Only sound while the
    /// caller still owns the scheduler exclusively (no workers spawned
    /// yet): the queue is drained and rebuilt non-atomically.
    fn fan_out_queued(&self) -> usize {
        let items: Vec<WorkItem> = {
            let mut state = lock(&self.state);
            state.queue.drain(..).collect()
        };
        let mut out = VecDeque::with_capacity(items.len());
        for item in items {
            match item {
                WorkItem::Pass { group, db } => match Self::explode(group, &db) {
                    Ok(parts) => out.extend(parts),
                    Err(group) => out.push_back(WorkItem::Pass { group, db }),
                },
                part => out.push_back(part),
            }
        }
        let len = out.len();
        {
            let mut state = lock(&self.state);
            debug_assert!(state.queue.is_empty(), "exclusive caller contract");
            state.queue = out;
        }
        self.cv.notify_all();
        len
    }
}

/// Execute one wave of scan groups with up to `threads` workers (the
/// caller included), returning when every task has finished. The wave
/// shares the caller's [`GridArena`]; the pool is scoped, so borrows stay
/// on the stack. Used by solo (non-batched) evaluation, where no
/// long-lived scheduler exists.
pub fn run_wave(
    db: &Arc<Database>,
    arena: Option<&GridArena>,
    groups: Vec<ScanGroup>,
    handles: &[TaskHandle],
    threads: usize,
) {
    if groups.is_empty() {
        return;
    }
    let scheduler = CubeScheduler::new();
    scheduler.submit(db, groups);
    // Pre-explode eligible passes into partition subtasks *before* closing
    // and sizing the pool: once the queue is closed, a helper that finds
    // it momentarily empty exits for good, so a single fused pass over a
    // large table must already be split when the helpers first look — and
    // the helper count must reflect subtasks, not whole passes.
    let items = scheduler.fan_out_queued();
    let helpers = threads.max(1).min(items.max(1)) - 1;
    scheduler.close();
    if helpers == 0 {
        scheduler.drive(arena, handles);
        return;
    }
    std::thread::scope(|scope| {
        for _ in 0..helpers {
            let scheduler = &scheduler;
            scope.spawn(move || scheduler.run_worker(arena));
        }
        scheduler.drive(arena, handles);
    });
}

// ---------------------------------------------------------------------------
// The wave-orchestration layer
// ---------------------------------------------------------------------------

/// How one cube group's missing aggregates are bundled into [`CubeTask`]s.
/// Bundling never changes results — each aggregate's cube slice is
/// computed identically whatever it shares a scan with — only how task
/// identities (and therefore single-flight cache keys' execution units)
/// are cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TaskBundling {
    /// One task per (group, wave): everything the wave discovers missing
    /// for a cube group is computed by a single task. Fewest tasks, but
    /// the task set depends on request order, so concurrent runs may
    /// bundle — and count — tasks differently.
    #[default]
    Wave,
    /// One task per (group, aggregation column). Callers always request a
    /// column's *complete* typing-valid function set
    /// (`CandidateSet::enumerate` in `agg-core`), so these bundles are
    /// canonical: every requester of any document asks for exactly the
    /// same keys, and the executed-task set is independent of scheduling.
    /// `BatchVerifier` uses this at every worker count, which is what the
    /// CI dedup gate measures.
    Canonical,
}

/// One cube group's worth of aggregate requests in a wave: the cube's
/// dimensions and literal coverage, plus every `(function, column)` the
/// wave needs from it.
#[derive(Debug, Clone, Copy)]
pub struct WaveRequest<'a> {
    pub dims: &'a [ColumnRef],
    pub relevant: &'a [Vec<Value>],
    pub aggs: &'a [(AggFunction, AggColumn)],
}

/// Where a wave's tasks execute and how they are cut and fused.
#[derive(Debug, Clone, Copy)]
pub struct WaveExec<'a> {
    /// Shared result cache; `None` evaluates uncached (every aggregate
    /// becomes a task, nothing is published).
    pub cache: Option<&'a EvalCache>,
    /// Dense-grid buffer pool for this caller's passes.
    pub arena: Option<&'a GridArena>,
    /// Shared scheduler (batch mode). `None` runs each wave on its own
    /// scoped pool of `threads` workers.
    pub scheduler: Option<&'a CubeScheduler>,
    /// Scoped-pool width when no shared scheduler is attached.
    pub threads: usize,
    /// How missing aggregates bundle into tasks.
    pub bundling: TaskBundling,
    /// Fuse same-scope tasks into shared scan passes. `false` reproduces
    /// the unfused one-pass-per-task shape (A/B and ablation path).
    pub fuse: bool,
    /// Storage blocks per fixed scan partition (0 disables partitioning).
    /// Shapes the deterministic partition/merge tree of every pass this
    /// wave runs — including inline poison-retry singletons — so all of a
    /// run's scans share one contract.
    pub partition_blocks: usize,
}

/// Scheduling counters for one wave, in the orchestration layer's own
/// units; callers fold them into their stats structs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaveStats {
    /// Aggregate keys served from resident cache slices.
    pub key_hits: u64,
    /// Keys served by joining another worker's in-flight computation (net
    /// of poisoned flights this wave ended up computing itself).
    pub key_waits: u64,
    /// Requests that needed no task of their own (every key resident or
    /// in flight elsewhere).
    pub groups_fully_served: u64,
    /// Cube tasks executed on behalf of this wave, poison-retry takeovers
    /// included.
    pub tasks_executed: u64,
    /// Fused row passes executed for this wave's tasks.
    pub scan_passes: u64,
    /// Real rows read by those passes (each pass counts its relation
    /// length once, however many member grids it feeds).
    pub rows_scanned: u64,
    /// Poisoned-flight wake-ups absorbed by this wave: each one re-probes
    /// the cache (bounded per aggregate, see [`MAX_POISON_RETRIES`])
    /// before possibly computing the key inline.
    pub poison_retries: u64,
    /// Compressed storage blocks decoded by this wave's scans, summed over
    /// member grids (each member decodes its own dimension blocks).
    pub blocks_scanned: u64,
    /// Blocks bulk-applied from zone-map metadata without decoding.
    pub blocks_skipped: u64,
    /// Encoded payload bytes read by the decoded blocks.
    pub bytes_scanned: u64,
    /// Fixed partitions scanned by this wave's passes (each partitioned
    /// pass counts its partition count once, like `rows_scanned`; a
    /// single-partition pass counts 0). Worker-count independent.
    pub partitions_scanned: u64,
    /// Partition-grid merges performed, summed per member task (each
    /// member's grids really fold `partitions − 1` times). Worker-count
    /// independent.
    pub partition_merges: u64,
    /// Max distinct workers observed on any one partitioned pass — a
    /// gauge, the only counter here that may legitimately vary run to run.
    pub partition_parallelism: u32,
    /// Cached grids patched forward from a checkpoint over just the
    /// appended rows ([`crate::cube::execute_patch_in`]) instead of
    /// cold-rescanning the corpus — one per patch pass.
    pub grids_patched: u64,
    /// Appended-tail rows scanned by those patch passes. The savings claim
    /// of incremental re-verification is `delta_rows_scanned` versus the
    /// full-corpus rows a cold rescan would have read.
    pub delta_rows_scanned: u64,
}

/// One wave's finished slices: `slices[request][aggregate]`, aligned with
/// the input request list.
#[derive(Debug)]
pub struct WaveOutcome {
    pub slices: Vec<Vec<CachedSlice>>,
    pub stats: WaveStats,
}

/// A pending aggregate: its index within the request plus the
/// single-flight guard won for it (`None` when evaluation runs uncached).
type MissingAgg = (usize, Option<FlightGuard>);

/// Chaos hook point for a wave-probe guard: the installed fault plan may
/// drop it here — poisoning the flight for every waiter that joined it —
/// while the wave still computes the aggregate for itself, unpublished.
/// That is the "publisher crashed between claim and publish" shape the
/// bounded poison-retry path must absorb. Without an active plan (and in
/// non-chaos builds) this is the identity.
fn keep_guard(guard: FlightGuard) -> Option<FlightGuard> {
    #[cfg(any(test, feature = "chaos"))]
    if crate::chaos::inject_wave_guard_drop() {
        drop(guard);
        return None;
    }
    Some(guard)
}

/// How one aggregate slice arrives at collection time.
enum Slot {
    /// Served from the cache at probe time.
    Ready(CachedSlice),
    /// `(task index, aggregate position within the task's cube)`.
    FromTask(usize, usize),
    /// Another worker is computing it; block after our own tasks ran.
    Waiting(FlightWaiter),
}

/// Run one scheduling wave end to end: atomically probe the cache for
/// every request (claiming single-flight guards), bundle the missing
/// aggregates into [`CubeTask`]s, fuse same-scope tasks into
/// [`ScanGroup`]s, execute them (on the shared scheduler or a scoped
/// pool), then collect — own tasks first, foreign flights after, with
/// poisoned flights retried inline. This is the **only** implementation of
/// the probe/bundle/wave/collect protocol; `core::evaluate` and
/// `crate::merge` both consume it.
pub fn run_requests(
    db: &Arc<Database>,
    exec: &WaveExec<'_>,
    requests: &[WaveRequest<'_>],
) -> Result<WaveOutcome> {
    let mut stats = WaveStats::default();
    // The wave's snapshot stamps: keys embed the structural version (a
    // mutation makes every older entry unreachable), probes and publishes
    // match on the watermark exactly.
    let version = db.version();
    let rows = db.watermark();

    // ---- Phase 1: one atomic probe for the whole wave. No blocking here
    // — waits are consumed only after our tasks are submitted, so
    // concurrent waves cannot deadlock on each other, and the all-or-
    // nothing claim keeps pass formation worker-count independent.
    let mut slots: Vec<Vec<Option<Slot>>> = requests
        .iter()
        .map(|r| {
            let mut v: Vec<Option<Slot>> = Vec::with_capacity(r.aggs.len());
            v.resize_with(r.aggs.len(), || None);
            v
        })
        .collect();
    let mut missing: Vec<Vec<MissingAgg>> = Vec::with_capacity(requests.len());
    match exec.cache {
        Some(cache) => {
            let key_store: Vec<Vec<CacheKey>> = requests
                .iter()
                .map(|r| {
                    r.aggs
                        .iter()
                        .map(|&(f, c)| CacheKey::new(f, c, r.dims.to_vec(), version))
                        .collect()
                })
                .collect();
            let flight_requests: Vec<FlightRequest<'_>> = requests
                .iter()
                .zip(&key_store)
                .map(|(r, keys)| FlightRequest {
                    keys,
                    needed: r.relevant,
                    rows,
                })
                .collect();
            for (request_slots, flights) in slots
                .iter_mut()
                .zip(cache.flight_batch_many(&flight_requests))
            {
                let mut request_missing = Vec::new();
                for (i, flight) in flights.into_iter().enumerate() {
                    match flight {
                        Flight::Hit(s) => {
                            stats.key_hits += 1;
                            request_slots[i] = Some(Slot::Ready(s));
                        }
                        Flight::Compute(guard) => request_missing.push((i, keep_guard(guard))),
                        Flight::Wait(w) => {
                            stats.key_waits += 1;
                            request_slots[i] = Some(Slot::Waiting(w));
                        }
                    }
                }
                missing.push(request_missing);
            }
        }
        None => {
            for request in requests {
                missing.push((0..request.aggs.len()).map(|i| (i, None)).collect());
            }
        }
    }

    // ---- Phase 2: bundle the missing aggregates into tasks.
    let mut tasks: Vec<CubeTask> = Vec::new();
    let mut handles: Vec<TaskHandle> = Vec::new();
    for ((request, request_missing), request_slots) in
        requests.iter().zip(missing).zip(slots.iter_mut())
    {
        if request_missing.is_empty() {
            stats.groups_fully_served += 1;
            continue;
        }
        // Bundles are keyed by (column, patch class): aggregates whose
        // fold is resumable from a checkpoint (`patchable_function`) never
        // share a cube with set/list-state aggregates (`CountDistinct`,
        // `Median`), whose presence would make the whole cube ineligible
        // for checkpoint capture. The split never changes pass formation —
        // both bundles share the request's table scope, so fusion folds
        // them into the same physical row pass.
        let mut bundles: Vec<((AggColumn, bool), Vec<MissingAgg>)> = Vec::new();
        // Guards that found a patch base become patch passes instead of
        // cold-scan bundles, grouped by the checkpoint they resume from:
        // keys whose stale slices share one underlying cube patch it once.
        type PatchMember = (usize, usize, FlightGuard);
        let mut patches: Vec<(Arc<ScanCheckpoint>, Vec<PatchMember>)> = Vec::new();
        for entry in request_missing {
            let patched = entry.1.as_ref().and_then(|g| {
                let cp = g.patch_base()?.clone();
                let (f, c) = request.aggs[entry.0];
                // The base came from a stale slice under this very key, so
                // the position lookup always succeeds — but fall back to a
                // cold bundle rather than trust that invariant blindly.
                let pos = cp
                    .cube()
                    .aggregates
                    .iter()
                    .position(|&(ff, cc)| ff == f && cc == c)?;
                Some((cp, pos))
            });
            if let Some((cp, pos)) = patched {
                let guard = entry.1.expect("patch bases only come from guards");
                match patches.iter_mut().find(|(c, _)| Arc::ptr_eq(c, &cp)) {
                    Some((_, members)) => members.push((entry.0, pos, guard)),
                    None => patches.push((cp, vec![(entry.0, pos, guard)])),
                }
                continue;
            }
            let col = match exec.bundling {
                TaskBundling::Wave => AggColumn::Star,
                TaskBundling::Canonical => request.aggs[entry.0].1,
            };
            let class = (col, patchable_function(request.aggs[entry.0].0));
            match bundles.iter_mut().find(|(c, _)| *c == class) {
                Some((_, members)) => members.push(entry),
                None => bundles.push((class, vec![entry])),
            }
        }
        for (checkpoint, members) in patches {
            let cube = checkpoint.cube().clone();
            let mut publish = Vec::with_capacity(members.len());
            let mut served: Vec<(usize, usize)> = Vec::with_capacity(members.len());
            for (i, pos, guard) in members {
                publish.push((pos, request.aggs[i].0, guard));
                served.push((i, pos));
            }
            let (task, handle) = CubeTask::patched(cube, publish, checkpoint);
            let task_idx = tasks.len();
            tasks.push(task);
            handles.push(handle);
            for (i, pos) in served {
                request_slots[i] = Some(Slot::FromTask(task_idx, pos));
            }
        }
        for (_, mut members) in bundles {
            let cube = CubeQuery {
                dims: request.dims.to_vec(),
                relevant: request.relevant.to_vec(),
                aggregates: members.iter().map(|&(i, _)| request.aggs[i]).collect(),
            };
            let publish = members
                .iter_mut()
                .enumerate()
                .filter_map(|(pos, (i, guard))| guard.take().map(|g| (pos, request.aggs[*i].0, g)))
                .collect();
            let (task, handle) = CubeTask::new(cube, publish);
            let task_idx = tasks.len();
            tasks.push(task);
            handles.push(handle);
            for (pos, (i, _)) in members.iter().enumerate() {
                request_slots[*i] = Some(Slot::FromTask(task_idx, pos));
            }
        }
    }

    // ---- Phase 3: fuse by table scope (planning-time pass formation) and
    // execute the wave. The index partition is kept for the pass-level
    // stats attribution in Phase 4.
    let pass_members = fusion_partition(&tasks, exec.fuse);
    let mut groups = ScanGroup::assemble(tasks, &pass_members);
    for group in &mut groups {
        group.set_partition_blocks(exec.partition_blocks);
    }
    match exec.scheduler {
        Some(scheduler) if !groups.is_empty() => {
            scheduler.submit(db, groups);
            scheduler.drive(exec.arena, &handles);
        }
        _ => run_wave(db, exec.arena, groups, &handles, exec.threads),
    }

    // ---- Phase 4: collect own tasks, then wait out foreign flights
    // (their tasks are submitted, so they make progress; poisoned flights
    // are retried inline).
    let mut task_results: Vec<Arc<CubeResult>> = Vec::with_capacity(handles.len());
    for handle in handles {
        let result = handle.into_result()?;
        stats.tasks_executed += 1;
        // Block counters are per member grid (each member decodes its own
        // dimension blocks), so they sum per task, unlike rows below.
        stats.blocks_scanned += result.stats.blocks_scanned;
        stats.blocks_skipped += result.stats.blocks_skipped;
        stats.bytes_scanned += result.stats.bytes_scanned;
        stats.partition_merges += result.stats.partition_merges;
        stats.partition_parallelism = stats
            .partition_parallelism
            .max(result.stats.partition_parallelism);
        stats.grids_patched += result.stats.grids_patched;
        task_results.push(result);
    }
    for (_, members) in &pass_members {
        stats.scan_passes += 1;
        // Every member of a pass scans the same relation (and the same
        // partitions of it); charge rows and partitions — and for patch
        // passes the shared appended tail — once per pass.
        stats.rows_scanned += task_results[members[0]].stats.rows_scanned;
        stats.partitions_scanned += task_results[members[0]].stats.partitions_scanned;
        stats.delta_rows_scanned += task_results[members[0]].stats.delta_rows_scanned;
    }
    let mut resolved: Vec<Vec<CachedSlice>> = Vec::with_capacity(requests.len());
    for (request, request_slots) in requests.iter().zip(slots) {
        let mut request_slices = Vec::with_capacity(request_slots.len());
        for (i, slot) in request_slots.into_iter().enumerate() {
            let slice = match slot.expect("slot filled") {
                Slot::Ready(s) => s,
                Slot::FromTask(task_idx, pos) => {
                    CachedSlice::new(task_results[task_idx].clone(), pos, request.aggs[i].0, rows)
                }
                Slot::Waiting(w) => resolve_wait(db, exec, request, i, w, &mut stats)?,
            };
            request_slices.push(slice);
        }
        resolved.push(request_slices);
    }

    Ok(WaveOutcome {
        slices: resolved,
        stats,
    })
}

/// Maximum poisoned-flight wake-ups one aggregate wait absorbs before the
/// wave gives up with [`RelationalError::Execution`]. Each retry re-probes
/// the cache and may end with this caller computing the key itself, so a
/// transient failure resolves in one round; only a computation that keeps
/// dying (or a fault plan that poisons every fresh flight) exhausts the
/// budget — previously such a storm livelocked every waiter forever.
pub const MAX_POISON_RETRIES: u64 = 8;

/// Wait out another worker's in-flight cube for `request.aggs[agg_idx]`;
/// on poison, re-probe (bounded by [`MAX_POISON_RETRIES`]) and compute
/// inline if the retry wins the guard.
fn resolve_wait(
    db: &Arc<Database>,
    exec: &WaveExec<'_>,
    request: &WaveRequest<'_>,
    agg_idx: usize,
    mut waiter: FlightWaiter,
    stats: &mut WaveStats,
) -> Result<CachedSlice> {
    let mut retries = 0u64;
    loop {
        if let Some(slice) = waiter.wait() {
            return Ok(slice);
        }
        let (f, c) = request.aggs[agg_idx];
        let key = CacheKey::new(f, c, request.dims.to_vec(), db.version());
        let rows = db.watermark();
        let cache = exec.cache.expect("waits only exist with a cache");
        retries += 1;
        stats.poison_retries += 1;
        cache.note_poison_retry(&key);
        if retries > MAX_POISON_RETRIES {
            return Err(RelationalError::Execution(format!(
                "single-flight for {f:?} aggregate poisoned {retries} times; \
                 retry budget exhausted"
            )));
        }
        match cache.flight(&key, request.relevant, rows) {
            Flight::Hit(s) => return Ok(s),
            Flight::Wait(w) => {
                // Still deduped — just joining the taker-over's flight.
                stats.key_waits += 1;
                waiter = w;
            }
            Flight::Compute(guard) => {
                // The request was booked as a wait when the original probe
                // joined the now-poisoned flight; it ends up executed
                // after all, so move it back across the ledger before
                // counting the execution.
                stats.key_waits -= 1;
                // A retry won after an append may find a patch base the
                // original probe did not; the inline takeover patches
                // exactly like a first-probe win would.
                let patched = guard.patch_base().and_then(|cp| {
                    let pos = cp
                        .cube()
                        .aggregates
                        .iter()
                        .position(|&(ff, cc)| ff == f && cc == c)?;
                    Some((cp.clone(), pos))
                });
                let (task, handle, pos) = match patched {
                    Some((cp, pos)) => {
                        let (task, handle) =
                            CubeTask::patched(cp.cube().clone(), vec![(pos, f, guard)], cp);
                        (task, handle, pos)
                    }
                    None => {
                        let cube = CubeQuery {
                            dims: request.dims.to_vec(),
                            relevant: request.relevant.to_vec(),
                            aggregates: vec![request.aggs[agg_idx]],
                        };
                        let (task, handle) = CubeTask::new(cube, vec![(0, f, guard)]);
                        (task, handle, 0)
                    }
                };
                let mut groups = ScanGroup::singletons(vec![task]);
                for group in &mut groups {
                    // Same span as the wave's own passes: the retried key's
                    // result must be bit-identical to what the poisoned
                    // publisher would have produced.
                    group.set_partition_blocks(exec.partition_blocks);
                }
                run_wave(db, exec.arena, groups, std::slice::from_ref(&handle), 1);
                let result = handle.into_result()?;
                stats.tasks_executed += 1;
                stats.scan_passes += 1;
                stats.rows_scanned += result.stats.rows_scanned;
                stats.blocks_scanned += result.stats.blocks_scanned;
                stats.blocks_skipped += result.stats.blocks_skipped;
                stats.bytes_scanned += result.stats.bytes_scanned;
                stats.partitions_scanned += result.stats.partitions_scanned;
                stats.partition_merges += result.stats.partition_merges;
                stats.partition_parallelism = stats
                    .partition_parallelism
                    .max(result.stats.partition_parallelism);
                stats.grids_patched += result.stats.grids_patched;
                stats.delta_rows_scanned += result.stats.delta_rows_scanned;
                return Ok(CachedSlice::new(result, pos, f, rows));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheKey, EvalCache, Flight};
    use crate::database::ColumnRef;
    use crate::query::AggColumn;
    use crate::table::Table;
    use crate::value::Value;

    fn db() -> Arc<Database> {
        let t = Table::from_columns(
            "t",
            vec![("cat", vec!["a".into(), "a".into(), "b".into(), "c".into()])],
        )
        .unwrap();
        let mut db = Database::new("d");
        db.add_table(t);
        Arc::new(db)
    }

    fn count_cube(db: &Database, literals: Vec<Value>) -> CubeQuery {
        CubeQuery {
            dims: vec![db.resolve("t", "cat").unwrap()],
            relevant: vec![literals],
            aggregates: vec![(AggFunction::Count, AggColumn::Star)],
        }
    }

    #[test]
    fn wave_executes_all_tasks_and_results_match_direct_execution() {
        let db = db();
        for threads in [1usize, 4] {
            for fused in [false, true] {
                let (tasks, handles): (Vec<_>, Vec<_>) = ["a", "b", "c"]
                    .iter()
                    .map(|lit| CubeTask::new(count_cube(&db, vec![(*lit).into()]), Vec::new()))
                    .unzip();
                let groups = if fused {
                    let groups = ScanGroup::fuse(tasks);
                    // One shared scope: all three tasks fuse into one pass.
                    assert_eq!(groups.len(), 1);
                    assert_eq!(groups[0].len(), 3);
                    groups
                } else {
                    ScanGroup::singletons(tasks)
                };
                run_wave(&db, None, groups, &handles, threads);
                for (lit, handle) in ["a", "b", "c"].iter().zip(&handles) {
                    assert!(handle.is_done());
                    let result = handle.result().unwrap();
                    let direct = count_cube(&db, vec![(*lit).into()]).execute(&db).unwrap();
                    assert_eq!(
                        result.get_count(&[crate::cube::DimSel::Literal(0)], 0),
                        direct.get_count(&[crate::cube::DimSel::Literal(0)], 0),
                        "[{threads}t fused={fused}] literal {lit}"
                    );
                }
            }
        }
    }

    #[test]
    fn failed_member_poisons_its_flights_without_stopping_siblings() {
        let db = db();
        let cache = EvalCache::new();
        let key = CacheKey::new(
            AggFunction::Percentage,
            AggColumn::Star,
            vec![ColumnRef::new(0, 0)],
            0,
        );
        let needed = vec![vec![Value::from("a")]];
        let guard = match cache.flight(&key, &needed, db.watermark()) {
            Flight::Compute(g) => g,
            other => panic!("expected Compute, got {other:?}"),
        };
        let waiter = match cache.flight(&key, &needed, db.watermark()) {
            Flight::Wait(w) => w,
            other => panic!("expected Wait, got {other:?}"),
        };
        // An invalid cube (ratio aggregate) fails validation; its sibling
        // in the same fused pass must still complete.
        let bad = CubeQuery {
            dims: vec![db.resolve("t", "cat").unwrap()],
            relevant: vec![vec!["a".into()]],
            aggregates: vec![(AggFunction::Percentage, AggColumn::Star)],
        };
        let (bad_task, bad_handle) = CubeTask::new(bad, vec![(0, AggFunction::Percentage, guard)]);
        let (good_task, good_handle) = CubeTask::new(count_cube(&db, vec!["a".into()]), Vec::new());
        let groups = ScanGroup::fuse(vec![bad_task, good_task]);
        let handles = [bad_handle, good_handle];
        run_wave(&db, None, groups, &handles, 1);
        assert!(handles[0].result().is_err());
        assert!(waiter.wait().is_none(), "flight poisoned by the failure");
        assert_eq!(
            handles[1]
                .result()
                .unwrap()
                .get_count(&[crate::cube::DimSel::Literal(0)], 0),
            2.0
        );
    }

    /// Chaos satellite: an injected panic inside ONE partition subtask of a
    /// fanned-out pass must fail EVERY member task, poison their registered
    /// flights (waking waiters), and leave no merge barrier hung — then
    /// re-raise on the executing thread so a supervisor can see the death.
    #[test]
    fn partition_subtask_panic_fails_all_members_and_notifies_waiters() {
        use crate::block::BLOCK_ROWS;
        let rows = 3 * BLOCK_ROWS; // 3 one-block partitions at span 1
        let cats: Vec<Value> = (0..rows).map(|i| ["a", "b", "c"][i % 3].into()).collect();
        let t = Table::from_columns("t", vec![("cat", cats)]).unwrap();
        let mut db = Database::new("d");
        db.add_table(t);
        let db = Arc::new(db);

        let cache = EvalCache::new();
        let key = CacheKey::new(
            AggFunction::Count,
            AggColumn::Star,
            vec![ColumnRef::new(0, 0)],
            0,
        );
        let needed = vec![vec![Value::from("a")]];
        let guard = match cache.flight(&key, &needed, db.watermark()) {
            Flight::Compute(g) => g,
            other => panic!("expected Compute, got {other:?}"),
        };
        let waiter = match cache.flight(&key, &needed, db.watermark()) {
            Flight::Wait(w) => w,
            other => panic!("expected Wait, got {other:?}"),
        };

        let (task_a, handle_a) = CubeTask::new(
            count_cube(&db, vec!["a".into()]),
            vec![(0, AggFunction::Count, guard)],
        );
        let (task_b, handle_b) = CubeTask::new(count_cube(&db, vec!["b".into()]), Vec::new());
        let mut groups = ScanGroup::fuse(vec![task_a, task_b]);
        assert_eq!(groups.len(), 1, "one shared scope fuses into one pass");
        for group in &mut groups {
            group.set_partition_blocks(1);
        }
        let handles = [handle_a, handle_b];

        // Seed 0, period 2: partition 0's single block crosses the hook at
        // n=1 (clean), partition 1 panics at n=2.
        let chaos = crate::chaos::install(crate::chaos::FaultPlan {
            seed: 0,
            panic_every_scan_blocks: 2,
            ..crate::chaos::FaultPlan::default()
        });
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_wave(&db, None, groups, &handles, 1);
        }));
        assert!(chaos.injected_panics() >= 1, "the plan must actually fire");
        drop(chaos);
        // The members settle BEFORE the payload re-raises: the driver's
        // unwind is observable here, not a hang.
        assert!(unwound.is_err(), "the chaos panic re-raises after settling");

        for (i, handle) in handles.iter().enumerate() {
            assert!(handle.is_done(), "member {i} hung on the merge barrier");
            assert!(
                handle.result().is_err(),
                "member {i}: one partition's panic fails the whole pass"
            );
        }
        assert!(
            waiter.wait().is_none(),
            "the failed member's flight was poisoned, waking its waiters"
        );
    }

    #[test]
    fn shared_scheduler_worker_drains_after_close() {
        let db = db();
        let scheduler = CubeScheduler::new();
        let (task, handle) = CubeTask::new(count_cube(&db, vec!["a".into()]), Vec::new());
        std::thread::scope(|scope| {
            let (scheduler, db) = (&scheduler, &db);
            let worker = scope.spawn(move || scheduler.run_worker(None));
            scheduler.submit(db, ScanGroup::singletons(vec![task]));
            scheduler.drive(None, std::slice::from_ref(&handle));
            scheduler.close();
            worker.join().unwrap();
        });
        assert_eq!(
            handle
                .into_result()
                .unwrap()
                .get_count(&[crate::cube::DimSel::Literal(0)], 0),
            2.0
        );
    }

    /// `help_until` must execute queued passes, park while the queue is
    /// empty, and return — without the scheduler being closed — once its
    /// recall predicate flips and a `kick` arrives.
    #[test]
    fn help_until_drains_then_returns_on_recall() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let db = db();
        let scheduler = CubeScheduler::new();
        let recall = AtomicBool::new(false);
        let (task, handle) = CubeTask::new(count_cube(&db, vec!["a".into()]), Vec::new());
        scheduler.submit(&db, ScanGroup::singletons(vec![task]));
        std::thread::scope(|scope| {
            let (scheduler, recall) = (&scheduler, &recall);
            let helper =
                scope.spawn(move || scheduler.help_until(None, || recall.load(Ordering::Acquire)));
            // The queued pass is executed even though recall is false.
            scheduler.drive(None, std::slice::from_ref(&handle));
            assert!(handle.is_done());
            // The helper is now parked on an empty queue; recall it.
            recall.store(true, Ordering::Release);
            scheduler.kick();
            helper.join().unwrap();
        });
        assert_eq!(
            handle
                .into_result()
                .unwrap()
                .get_count(&[crate::cube::DimSel::Literal(0)], 0),
            2.0
        );
        // The scheduler was never closed: new submissions still run.
        let (task, handle) = CubeTask::new(count_cube(&db, vec!["b".into()]), Vec::new());
        scheduler.submit(&db, ScanGroup::singletons(vec![task]));
        scheduler.drive(None, std::slice::from_ref(&handle));
        assert!(handle.is_done());
    }

    /// A kick issued after the predicate flips can never be lost: the
    /// recall check runs under the scheduler lock, and `kick` touches that
    /// lock before notifying. Hammer the park/recall cycle to exercise the
    /// race window.
    #[test]
    fn help_until_kick_has_no_lost_wakeup() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let scheduler = CubeScheduler::new();
        let epoch = AtomicUsize::new(0);
        for round in 1..=50usize {
            std::thread::scope(|scope| {
                let (scheduler, epoch) = (&scheduler, &epoch);
                let helper = scope.spawn(move || {
                    scheduler.help_until(None, || epoch.load(Ordering::Acquire) >= round)
                });
                epoch.store(round, Ordering::Release);
                scheduler.kick();
                helper.join().unwrap();
            });
        }
    }

    fn wave_request<'a>(
        dims: &'a [ColumnRef],
        relevant: &'a [Vec<Value>],
        aggs: &'a [(AggFunction, AggColumn)],
    ) -> WaveRequest<'a> {
        WaveRequest {
            dims,
            relevant,
            aggs,
        }
    }

    /// The orchestration layer end to end over a shared cache: first wave
    /// computes (fused into one pass), second wave is all hits.
    #[test]
    fn run_requests_fuses_then_serves_from_cache() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        let dims = [cat];
        let relevant = vec![vec![Value::from("a"), Value::from("b")]];
        let aggs_count = [(AggFunction::Count, AggColumn::Star)];
        let aggs_distinct = [(AggFunction::CountDistinct, AggColumn::Column(cat))];
        let requests = [
            wave_request(&dims, &relevant, &aggs_count),
            wave_request(&dims, &relevant, &aggs_distinct),
        ];
        let exec = WaveExec {
            cache: Some(&cache),
            arena: None,
            scheduler: None,
            threads: 1,
            bundling: TaskBundling::Canonical,
            fuse: true,
            partition_blocks: DEFAULT_PARTITION_BLOCKS,
        };
        let first = run_requests(&db, &exec, &requests).unwrap();
        assert_eq!(first.stats.tasks_executed, 2, "one task per request");
        assert_eq!(first.stats.scan_passes, 1, "both tasks share one pass");
        assert_eq!(first.stats.rows_scanned, 4, "the pass reads the table once");
        assert_eq!(first.stats.key_hits, 0);
        assert_eq!(
            first.slices[0][0].lookup(&[Some("a".into())]),
            Ok(Some(2.0))
        );

        let second = run_requests(&db, &exec, &requests).unwrap();
        assert_eq!(second.stats.tasks_executed, 0);
        assert_eq!(second.stats.scan_passes, 0);
        assert_eq!(second.stats.key_hits, 2);
        assert_eq!(second.stats.groups_fully_served, 2);
        assert_eq!(
            second.slices[1][0].lookup(&[None]),
            first.slices[1][0].lookup(&[None])
        );
    }

    /// The delta-aware re-verify path end to end: a wave at a newer
    /// watermark never hits the stale grid, wins the flight with a patch
    /// base, executes ONE patch pass over just the appended partitions,
    /// and publishes at the new stamp — with values identical to a cold
    /// rescan of the whole table.
    #[test]
    fn run_requests_patches_stale_grids_after_appends() {
        use crate::block::BLOCK_ROWS;
        let n1 = 2 * BLOCK_ROWS + 100;
        let cats: Vec<Value> = (0..n1).map(|i| ["a", "b"][i % 2].into()).collect();
        let t = Table::from_columns("t", vec![("cat", cats)]).unwrap();
        let mut db = Database::new("d");
        db.add_table(t);
        let cat = db.resolve("t", "cat").unwrap();
        let db1 = Arc::new(db);
        let cache = EvalCache::new();
        let dims = [cat];
        let relevant = vec![vec![Value::from("a")]];
        let aggs = [(AggFunction::Count, AggColumn::Star)];
        let exec = WaveExec {
            cache: Some(&cache),
            arena: None,
            scheduler: None,
            threads: 1,
            bundling: TaskBundling::Canonical,
            fuse: true,
            partition_blocks: 1,
        };
        let requests = [wave_request(&dims, &relevant, &aggs)];
        let first = run_requests(&db1, &exec, &requests).unwrap();
        assert_eq!(first.stats.grids_patched, 0);
        assert_eq!(first.stats.rows_scanned, n1 as u64);
        assert_eq!(
            first.slices[0][0].lookup(&[Some("a".into())]),
            Ok(Some((n1 / 2) as f64))
        );

        // Append a small batch; the next wave runs on a new snapshot.
        let mut db2 = (*db1).clone();
        let batch: Vec<Vec<Value>> = (0..50).map(|_| vec!["a".into()]).collect();
        db2.append_rows("t", &batch).unwrap();
        let db2 = Arc::new(db2);
        let second = run_requests(&db2, &exec, &requests).unwrap();
        assert_eq!(second.stats.key_hits, 0, "stale stamps never hit");
        assert_eq!(second.stats.grids_patched, 1, "patched, not rescanned");
        assert_eq!(second.stats.rows_scanned, second.stats.delta_rows_scanned);
        assert!(
            second.stats.delta_rows_scanned < n1 as u64 / 2,
            "the patch scans only the appended tail ({} rows), not the corpus",
            second.stats.delta_rows_scanned
        );
        assert_eq!(
            second.slices[0][0].lookup(&[Some("a".into())]),
            Ok(Some((n1 / 2 + 50) as f64)),
            "patched value equals a cold rescan's"
        );

        // Same watermark again: the patched slice is a plain hit.
        let third = run_requests(&db2, &exec, &requests).unwrap();
        assert_eq!(third.stats.key_hits, 1);
        assert_eq!(third.stats.tasks_executed, 0);
    }

    /// Unfused execution is the PR 3 shape: one pass per task, rows
    /// charged per task.
    #[test]
    fn run_requests_unfused_pays_one_pass_per_task() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let dims = [cat];
        let relevant = vec![vec![Value::from("a")]];
        let aggs = [
            (AggFunction::Count, AggColumn::Star),
            (AggFunction::CountDistinct, AggColumn::Column(cat)),
        ];
        let requests = [wave_request(&dims, &relevant, &aggs)];
        for (fuse, passes, rows) in [(true, 1u64, 4u64), (false, 2, 8)] {
            let exec = WaveExec {
                cache: None,
                arena: None,
                scheduler: None,
                threads: 1,
                bundling: TaskBundling::Canonical,
                fuse,
                partition_blocks: DEFAULT_PARTITION_BLOCKS,
            };
            let outcome = run_requests(&db, &exec, &requests).unwrap();
            assert_eq!(outcome.stats.tasks_executed, 2, "fuse={fuse}");
            assert_eq!(outcome.stats.scan_passes, passes, "fuse={fuse}");
            assert_eq!(outcome.stats.rows_scanned, rows, "fuse={fuse}");
        }
    }

    /// 8 workers hammering one shared scheduler + cache with identical
    /// fusable waves: group formation under contention must neither
    /// duplicate nor lose an execution — every worker sees the same
    /// slices, and the union of all workers' passes computes each key
    /// exactly once.
    #[test]
    fn concurrent_group_formation_single_flight_stress() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let workers = 8usize;
        let cache = EvalCache::new();
        let scheduler = CubeScheduler::new();
        let dims = [cat];
        let relevant = vec![vec![Value::from("a"), Value::from("b"), Value::from("c")]];
        let aggs = [
            (AggFunction::Count, AggColumn::Star),
            (AggFunction::CountDistinct, AggColumn::Column(cat)),
        ];
        let outcomes: Vec<WaveOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (db, cache, scheduler) = (&db, &cache, &scheduler);
                    let (dims, relevant, aggs) = (&dims, &relevant, &aggs);
                    scope.spawn(move || {
                        let requests = [wave_request(dims, relevant, aggs)];
                        let exec = WaveExec {
                            cache: Some(cache),
                            arena: None,
                            scheduler: Some(scheduler),
                            threads: 1,
                            bundling: TaskBundling::Canonical,
                            fuse: true,
                            partition_blocks: DEFAULT_PARTITION_BLOCKS,
                        };
                        run_requests(db, &exec, &requests).unwrap()
                    })
                })
                .collect();
            let outcomes = handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>();
            scheduler.close();
            outcomes
        });
        let total_tasks: u64 = outcomes.iter().map(|o| o.stats.tasks_executed).sum();
        let total_passes: u64 = outcomes.iter().map(|o| o.stats.scan_passes).sum();
        // The atomic wave probe makes the claim all-or-nothing: exactly
        // one worker executed the wave's two tasks as one fused pass.
        assert_eq!(total_tasks, 2, "one execution of each key");
        assert_eq!(total_passes, 1, "one fused pass in the whole stress run");
        let served: u64 = outcomes
            .iter()
            .map(|o| o.stats.key_hits + o.stats.key_waits)
            .sum();
        assert_eq!(
            served,
            (workers as u64 - 1) * 2,
            "everyone else hit or waited"
        );
        for outcome in &outcomes {
            assert_eq!(
                outcome.slices[0][0].lookup(&[Some("a".into())]),
                Ok(Some(2.0))
            );
            assert_eq!(outcome.slices[0][1].lookup(&[None]), Ok(Some(3.0)));
        }
        assert_eq!(cache.len(), 2);
    }
}
