//! The `GROUP BY CUBE` operator with `InOrDefault` literal remapping (§6.2).
//!
//! One cube execution covers *many* candidate queries at once: every
//! combination of equality predicates over the cube dimensions, including
//! the combinations that leave some dimensions unrestricted. Literals with
//! zero marginal probability are collapsed into a reserved `OTHER` bucket
//! *before* grouping — the paper's `InOrDefault` rewrite — which keeps the
//! result set proportional to the number of *relevant* literals rather than
//! the column cardinality.
//!
//! Execution is a single scan building the finest-level groups, followed by
//! a rollup into all `2^|dims|` dimension subsets. Rollups merge
//! accumulators, so even `CountDistinct` stays exact.

use crate::aggregate::Accumulator;
use crate::database::{ColumnRef, Database};
use crate::error::{RelationalError, Result};
use crate::join::JoinedRelation;
use crate::query::{AggColumn, AggFunction};
use crate::value::Value;
use std::collections::HashMap;

/// Maximum number of cube dimensions (packed 8 bits each into a `u64` key).
pub const MAX_DIMS: usize = 8;
/// Per-dimension code for "values not in the relevant set" (`InOrDefault`).
const OTHER: u8 = 254;
/// Per-dimension code for "dimension not grouped" (rolled up / unrestricted).
const ALL: u8 = 255;

/// Selects one dimension's slice of a cube result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimSel {
    /// Dimension unrestricted (rolled up).
    Any,
    /// Dimension fixed to the literal with this index in the cube's
    /// `relevant` list for that dimension.
    Literal(usize),
}

/// A packed group key: one byte per dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupKey(u64);

impl GroupKey {
    fn from_codes(codes: &[u8]) -> GroupKey {
        debug_assert!(codes.len() <= MAX_DIMS);
        let mut key = 0u64;
        for (i, &c) in codes.iter().enumerate() {
            key |= (c as u64) << (8 * i);
        }
        // Unused high bytes read as 0, which collides with literal index 0;
        // fill them with ALL so keys are unambiguous for any dim count.
        for i in codes.len()..MAX_DIMS {
            key |= (ALL as u64) << (8 * i);
        }
        GroupKey(key)
    }

    /// Replace the code of dimension `dim` with ALL.
    fn rolled_up(self, dim: usize) -> GroupKey {
        GroupKey(self.0 | ((ALL as u64) << (8 * dim)))
    }
}

/// A cube query: aggregates over all predicate combinations on `dims`.
#[derive(Debug, Clone)]
pub struct CubeQuery {
    /// Cube dimensions (categorical or numeric columns used in predicates).
    pub dims: Vec<ColumnRef>,
    /// Relevant literals per dimension; everything else maps to `OTHER`.
    pub relevant: Vec<Vec<Value>>,
    /// Value aggregates to compute per group. Ratio aggregates are *not*
    /// allowed here — derive them from `Count` results (see
    /// [`crate::aggregate::ratio_from_counts`]).
    pub aggregates: Vec<(AggFunction, AggColumn)>,
}

/// Execution statistics, used by the Table 6 experiment instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CubeStats {
    pub rows_scanned: u64,
    pub finest_groups: u64,
    pub total_groups: u64,
}

/// The result of one cube execution: finished aggregate values for every
/// (dimension subset × relevant-literal combination) group.
#[derive(Debug, Clone)]
pub struct CubeResult {
    dims: Vec<ColumnRef>,
    relevant: Vec<Vec<Value>>,
    n_aggs: usize,
    groups: HashMap<GroupKey, Vec<Option<f64>>>,
    pub stats: CubeStats,
}

impl CubeQuery {
    /// Validate structural limits and aggregate kinds.
    pub fn validate(&self) -> Result<()> {
        if self.dims.len() > MAX_DIMS {
            return Err(RelationalError::InvalidQuery(format!(
                "cube supports at most {MAX_DIMS} dimensions, got {}",
                self.dims.len()
            )));
        }
        if self.relevant.len() != self.dims.len() {
            return Err(RelationalError::InvalidQuery(
                "one relevant-literal list per dimension required".into(),
            ));
        }
        for lits in &self.relevant {
            if lits.len() >= OTHER as usize {
                return Err(RelationalError::InvalidQuery(format!(
                    "at most {} relevant literals per dimension",
                    OTHER - 1
                )));
            }
        }
        for (f, _) in &self.aggregates {
            if f.is_ratio() {
                return Err(RelationalError::InvalidQuery(
                    "ratio aggregates must be derived from Count cube results".into(),
                ));
            }
        }
        Ok(())
    }

    /// Tables referenced by dimensions and aggregation columns.
    pub fn tables_referenced(&self) -> Vec<usize> {
        let mut tables: Vec<usize> = self.dims.iter().map(|d| d.table).collect();
        for (_, col) in &self.aggregates {
            if let AggColumn::Column(c) = col {
                tables.push(c.table);
            }
        }
        tables.sort_unstable();
        tables.dedup();
        if tables.is_empty() {
            tables.push(0);
        }
        tables
    }

    /// Execute the cube against the database.
    pub fn execute(&self, db: &Database) -> Result<CubeResult> {
        let relation = JoinedRelation::for_tables(db, &self.tables_referenced())?;
        self.execute_on(db, &relation)
    }

    /// Execute against a pre-materialized join.
    pub fn execute_on(&self, db: &Database, relation: &JoinedRelation) -> Result<CubeResult> {
        self.validate()?;
        let d = self.dims.len();

        // Per dimension: resolver + column + map from group code → literal index.
        struct DimCtx<'a> {
            resolver: crate::join::RowResolver<'a>,
            col: &'a crate::column::ColumnData,
            literal_codes: HashMap<u64, u8>,
        }
        let mut dim_ctx = Vec::with_capacity(d);
        for (dim, lits) in self.dims.iter().zip(&self.relevant) {
            let col = db.column(*dim);
            let mut literal_codes = HashMap::with_capacity(lits.len());
            for (i, lit) in lits.iter().enumerate() {
                if let Some(code) = col.group_code_of(lit) {
                    literal_codes.insert(code, i as u8);
                }
                // Literals absent from the column simply never match a row;
                // lookups for them return empty-group aggregates.
            }
            dim_ctx.push(DimCtx {
                resolver: relation.resolver(*dim),
                col,
                literal_codes,
            });
        }

        // Aggregation columns: resolver + column (None for `*`).
        let agg_ctx: Vec<Option<(crate::join::RowResolver<'_>, &crate::column::ColumnData)>> =
            self.aggregates
                .iter()
                .map(|(_, col)| {
                    col.as_column()
                        .map(|c| (relation.resolver(c), db.column(c)))
                })
                .collect();

        // Pass 1: finest-level groups.
        let mut finest: HashMap<GroupKey, Vec<Accumulator>> = HashMap::new();
        let mut codes = vec![0u8; d];
        for row in 0..relation.len() {
            for (i, ctx) in dim_ctx.iter().enumerate() {
                let base = ctx.resolver.base_row(row);
                codes[i] = ctx
                    .col
                    .group_code(base)
                    .and_then(|gc| ctx.literal_codes.get(&gc).copied())
                    .unwrap_or(OTHER);
            }
            let key = GroupKey::from_codes(&codes);
            let accs = finest.entry(key).or_insert_with(|| {
                self.aggregates
                    .iter()
                    .map(|(f, _)| Accumulator::new(*f))
                    .collect()
            });
            for (acc, ctx) in accs.iter_mut().zip(&agg_ctx) {
                match ctx {
                    None => acc.update(None, None, true),
                    Some((res, col)) => {
                        let base = res.base_row(row);
                        acc.update(col.get_f64(base), col.group_code(base), !col.is_null(base));
                    }
                }
            }
        }

        let finest_groups = finest.len() as u64;

        // Pass 2: roll up into every dimension subset. Keys from different
        // subsets cannot collide because rolled-up dimensions read ALL.
        let mut all_groups: HashMap<GroupKey, Vec<Accumulator>> = finest;
        if d > 0 {
            let finest_keys: Vec<GroupKey> = all_groups.keys().copied().collect();
            for mask in 0..(1u32 << d) - 1 {
                // `mask` bit i set ⇒ dimension i is grouped (kept).
                for &fk in &finest_keys {
                    let mut key = fk;
                    for i in 0..d {
                        if mask & (1 << i) == 0 {
                            key = key.rolled_up(i);
                        }
                    }
                    if key == fk {
                        continue;
                    }
                    let src = all_groups
                        .get(&fk)
                        .expect("finest key present")
                        .clone();
                    match all_groups.entry(key) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            for (a, b) in e.get_mut().iter_mut().zip(&src) {
                                a.merge(b);
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(src);
                        }
                    }
                }
            }
        }

        let stats = CubeStats {
            rows_scanned: relation.len() as u64,
            finest_groups,
            total_groups: all_groups.len() as u64,
        };
        let groups = all_groups
            .into_iter()
            .map(|(k, accs)| (k, accs.iter().map(Accumulator::finish).collect()))
            .collect();
        Ok(CubeResult {
            dims: self.dims.clone(),
            relevant: self.relevant.clone(),
            n_aggs: self.aggregates.len(),
            groups,
            stats,
        })
    }
}

impl CubeResult {
    pub fn dims(&self) -> &[ColumnRef] {
        &self.dims
    }

    pub fn relevant(&self) -> &[Vec<Value>] {
        &self.relevant
    }

    pub fn aggregate_count(&self) -> usize {
        self.n_aggs
    }

    /// The literal index of `value` in dimension `dim`'s relevant list.
    pub fn literal_index(&self, dim: usize, value: &Value) -> Option<usize> {
        self.relevant[dim].iter().position(|v| v == value)
    }

    /// Look up the aggregate `agg_idx` for the group selected by
    /// `assignment` (one selector per dimension).
    ///
    /// Returns `None` when the group is empty (no row matched) **and** the
    /// aggregate is NULL-on-empty; for `Count`-like aggregates an absent
    /// group reads as `Some(0.0)` only via [`CubeResult::get_count`].
    pub fn get(&self, assignment: &[DimSel], agg_idx: usize) -> Option<f64> {
        let key = self.assignment_key(assignment)?;
        self.groups.get(&key).and_then(|vals| vals[agg_idx])
    }

    /// Like [`CubeResult::get`] for count aggregates: an absent group means
    /// zero matching rows, so the count is 0.
    pub fn get_count(&self, assignment: &[DimSel], agg_idx: usize) -> f64 {
        match self.assignment_key(assignment) {
            Some(key) => self
                .groups
                .get(&key)
                .and_then(|vals| vals[agg_idx])
                .unwrap_or(0.0),
            None => 0.0,
        }
    }

    fn assignment_key(&self, assignment: &[DimSel]) -> Option<GroupKey> {
        debug_assert_eq!(assignment.len(), self.dims.len());
        let mut codes = Vec::with_capacity(assignment.len());
        for (i, sel) in assignment.iter().enumerate() {
            match sel {
                DimSel::Any => codes.push(ALL),
                DimSel::Literal(idx) => {
                    if *idx >= self.relevant[i].len() {
                        return None;
                    }
                    codes.push(*idx as u8);
                }
            }
        }
        Some(GroupKey::from_codes(&codes))
    }

    /// Total number of materialized groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_query;
    use crate::query::{Predicate, SimpleAggregateQuery};
    use crate::table::Table;

    /// Figure 2's data set, as in the exec tests.
    fn nfl() -> Database {
        let t = Table::from_columns(
            "nflsuspensions",
            vec![
                (
                    "games",
                    vec![
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "10".into(),
                        "4".into(),
                    ],
                ),
                (
                    "category",
                    vec![
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "gambling".into(),
                        "peds".into(),
                        "personal conduct".into(),
                    ],
                ),
                (
                    "year",
                    vec![
                        Value::Int(1989),
                        Value::Int(1995),
                        Value::Int(2014),
                        Value::Int(1983),
                        Value::Int(2014),
                        Value::Int(2014),
                    ],
                ),
            ],
        )
        .unwrap();
        let mut db = Database::new("nfl");
        db.add_table(t);
        db
    }

    fn nfl_cube(db: &Database) -> CubeResult {
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let cat = db.resolve("nflsuspensions", "category").unwrap();
        let year = db.resolve("nflsuspensions", "year").unwrap();
        CubeQuery {
            dims: vec![games, cat],
            relevant: vec![
                vec!["indef".into()],
                vec![
                    "gambling".into(),
                    "substance abuse, repeated offense".into(),
                ],
            ],
            aggregates: vec![
                (AggFunction::Count, AggColumn::Star),
                (AggFunction::Sum, AggColumn::Column(year)),
                (AggFunction::Avg, AggColumn::Column(year)),
            ],
        }
        .execute(db)
        .unwrap()
    }

    #[test]
    fn cube_reproduces_paper_counts() {
        let db = nfl();
        let r = nfl_cube(&db);
        // Four lifetime bans (games = indef, any category).
        assert_eq!(r.get_count(&[DimSel::Literal(0), DimSel::Any], 0), 4.0);
        // Three for repeated substance abuse.
        assert_eq!(
            r.get_count(&[DimSel::Literal(0), DimSel::Literal(1)], 0),
            3.0
        );
        // One for gambling.
        assert_eq!(
            r.get_count(&[DimSel::Literal(0), DimSel::Literal(0)], 0),
            1.0
        );
        // Grand total.
        assert_eq!(r.get_count(&[DimSel::Any, DimSel::Any], 0), 6.0);
    }

    #[test]
    fn cube_matches_naive_executor_on_every_combination() {
        let db = nfl();
        let r = nfl_cube(&db);
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let cat = db.resolve("nflsuspensions", "category").unwrap();
        let year = db.resolve("nflsuspensions", "year").unwrap();
        let game_lits = [Some("indef"), None];
        let cat_lits = [
            Some("gambling"),
            Some("substance abuse, repeated offense"),
            None,
        ];
        for (gi, g) in game_lits.iter().enumerate() {
            for (ci, c) in cat_lits.iter().enumerate() {
                let mut preds = Vec::new();
                let mut assignment = Vec::new();
                match g {
                    Some(lit) => {
                        preds.push(Predicate::new(games, *lit));
                        assignment.push(DimSel::Literal(gi));
                    }
                    None => assignment.push(DimSel::Any),
                }
                match c {
                    Some(lit) => {
                        preds.push(Predicate::new(cat, *lit));
                        assignment.push(DimSel::Literal(ci));
                    }
                    None => assignment.push(DimSel::Any),
                }
                for (agg_idx, (f, col)) in [
                    (AggFunction::Count, AggColumn::Star),
                    (AggFunction::Sum, AggColumn::Column(year)),
                    (AggFunction::Avg, AggColumn::Column(year)),
                ]
                .iter()
                .enumerate()
                {
                    let q = SimpleAggregateQuery::new(*f, *col, preds.clone());
                    let naive = execute_query(&db, &q).unwrap();
                    if *f == AggFunction::Count {
                        assert_eq!(
                            Some(r.get_count(&assignment, agg_idx)),
                            naive,
                            "{}",
                            q.to_sql(&db)
                        );
                    } else {
                        assert_eq!(r.get(&assignment, agg_idx), naive, "{}", q.to_sql(&db));
                    }
                }
            }
        }
    }

    #[test]
    fn count_distinct_survives_rollup() {
        let db = nfl();
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let year = db.resolve("nflsuspensions", "year").unwrap();
        let r = CubeQuery {
            dims: vec![games],
            relevant: vec![vec!["indef".into()]],
            aggregates: vec![(AggFunction::CountDistinct, AggColumn::Column(year))],
        }
        .execute(&db)
        .unwrap();
        // indef years: 1989, 1995, 2014, 1983 → 4 distinct.
        assert_eq!(r.get(&[DimSel::Literal(0)], 0), Some(4.0));
        // All years: 1989, 1995, 2014, 1983, 2014, 2014 → 4 distinct, not 6:
        // the rollup must merge distinct sets, not add counts.
        assert_eq!(r.get(&[DimSel::Any], 0), Some(4.0));
    }

    #[test]
    fn irrelevant_literals_collapse_to_other() {
        let db = nfl();
        let r = nfl_cube(&db);
        // Finest level: games ∈ {indef, OTHER} × category ∈ {gambling,
        // substance, OTHER} — at most 6 finest groups even if the raw
        // columns had thousands of values.
        assert!(r.stats.finest_groups <= 6, "{:?}", r.stats);
    }

    #[test]
    fn missing_literal_reads_as_empty_group() {
        let db = nfl();
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let r = CubeQuery {
            dims: vec![games],
            relevant: vec![vec!["indef".into(), "not-in-data".into()]],
            aggregates: vec![(AggFunction::Count, AggColumn::Star)],
        }
        .execute(&db)
        .unwrap();
        assert_eq!(r.get_count(&[DimSel::Literal(1)], 0), 0.0);
        assert_eq!(r.get(&[DimSel::Literal(1)], 0), None);
        // Out-of-range literal index is not a panic either.
        assert_eq!(r.get_count(&[DimSel::Literal(9)], 0), 0.0);
    }

    #[test]
    fn zero_dimension_cube_is_global_aggregate() {
        let db = nfl();
        let year = db.resolve("nflsuspensions", "year").unwrap();
        let r = CubeQuery {
            dims: vec![],
            relevant: vec![],
            aggregates: vec![(AggFunction::Max, AggColumn::Column(year))],
        }
        .execute(&db)
        .unwrap();
        assert_eq!(r.get(&[], 0), Some(2014.0));
        assert_eq!(r.group_count(), 1);
    }

    #[test]
    fn ratio_aggregates_rejected() {
        let db = nfl();
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let q = CubeQuery {
            dims: vec![games],
            relevant: vec![vec!["indef".into()]],
            aggregates: vec![(AggFunction::Percentage, AggColumn::Star)],
        };
        assert!(q.execute(&db).is_err());
    }

    #[test]
    fn too_many_dimensions_rejected() {
        let db = nfl();
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let q = CubeQuery {
            dims: vec![games; 9],
            relevant: vec![vec![]; 9],
            aggregates: vec![(AggFunction::Count, AggColumn::Star)],
        };
        assert!(q.execute(&db).is_err());
    }

    #[test]
    fn numeric_dimension_grouping() {
        let db = nfl();
        let year = db.resolve("nflsuspensions", "year").unwrap();
        let r = CubeQuery {
            dims: vec![year],
            relevant: vec![vec![Value::Int(2014)]],
            aggregates: vec![(AggFunction::Count, AggColumn::Star)],
        }
        .execute(&db)
        .unwrap();
        assert_eq!(r.get_count(&[DimSel::Literal(0)], 0), 3.0);
    }
}
