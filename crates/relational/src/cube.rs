//! The `GROUP BY CUBE` operator with `InOrDefault` literal remapping (§6.2).
//!
//! One cube execution covers *many* candidate queries at once: every
//! combination of equality predicates over the cube dimensions, including
//! the combinations that leave some dimensions unrestricted. Literals with
//! zero marginal probability are collapsed into a reserved `OTHER` bucket
//! *before* grouping — the paper's `InOrDefault` rewrite — which keeps the
//! result set proportional to the number of *relevant* literals rather than
//! the column cardinality.
//!
//! # Execution model
//!
//! The scan is the single hottest loop in the system (Table 6 of the paper
//! rests on it), so the executor picks between two grid representations:
//!
//! * **Dense mixed-radix grid** — each dimension contributes at most
//!   `|relevant| + 1` codes (its literals plus `OTHER`), so a group is
//!   addressed by `Σ codeᵢ · strideᵢ` into a flat accumulator array. When
//!   the radix product fits [`CubeOptions::dense_cell_cap`] (the common
//!   case: merged candidate queries restrict 1–3 columns to a handful of
//!   literals each) the per-row work is a dictionary-code table lookup plus
//!   an array index — **zero hashing, zero allocation**.
//! * **Hashed fallback** — cubes whose radix product exceeds the cap (many
//!   dimensions × many literals) accumulate into an `FxHashMap` keyed by the
//!   packed per-dimension codes instead. Same semantics, bounded memory.
//!
//! The decision rule is purely structural (`Π (|relevantᵢ| + 1) ≤ cap`), so
//! it is stable across runs and row counts; [`CubeStats::grid_mode`] records
//! which path ran for the Table 6 instrumentation.
//!
//! Every scan — solo or fused, sequential or parallel — runs over the
//! same **fixed partitions**: contiguous ranges of storage blocks whose
//! boundaries are a pure function of the row count and
//! [`CubeOptions::partition_blocks`] ([`crate::block::partition_ranges`]),
//! never of worker count. Each partition is scanned into partition-local
//! grids, and the partition grids are folded in **ascending partition
//! order** via [`Accumulator::merge`]. Because the partition shape and the
//! merge order are both worker-independent, the f64 accumulation tree —
//! and therefore every report, down to the last ulp — is bit-identical
//! whether the partitions ran on one thread ([`CubeOptions::threads`]
//! `== 1`), on scoped threads stealing partitions (`threads > 1`), or on
//! `crate::schedule`'s `CubeScheduler` workers (reached through
//! `core::evaluate::Evaluator`), and regardless of completion order. The
//! rollup into all `2^|dims|` dimension subsets is dimension-at-a-time —
//! every group is merged into at most `|dims|` coarser groups, i.e.
//! O(d · groups) merges with no intermediate clones (the seed
//! implementation cloned every finest group `2^d − 1` times).
//!
//! # Fused multi-cube scans
//!
//! [`execute_fused_in`] feeds **many cubes' grids from one row pass**: the
//! cubes of one scheduling wave that reference the same table scope share
//! a single scan of the joined relation instead of each paying their own
//! (`crate::schedule::ScanGroup`). Fusion is purely physical and preserves
//! two invariants the pipeline's determinism rests on:
//!
//! * **per-grid isolation** — every member keeps its own mixed-radix LUTs,
//!   its own dense/hashed decision, and its own accumulator grid, and each
//!   grid sees the rows in relation order, so a member's f64 accumulation
//!   sequence (and therefore its [`CubeResult`], down to the last ulp) is
//!   identical to a solo sequential execution of that cube;
//! * **member-order updates** — within each row block the grids are
//!   updated in member (task-submission) order, so even the side effects
//!   of a pass are deterministic for any member set.
//!
//! # Compressed block execution
//!
//! When the scanned relation is a single **sealed** table
//! ([`crate::table::Table::seal`]) and every dimension is
//! dictionary-coded, sequential scans run **directly on the compressed
//! blocks** ([`crate::block`]): each [`crate::block::BLOCK_ROWS`]-row
//! scan chunk is one
//! storage block, its zone maps are consulted before any decode, blocks
//! provably constant across all dimensions are bulk-applied (counts) or
//! cell-splatted (value aggregates), and everything else decodes
//! bit-packed/RLE codes straight into the mixed-radix cell buffer. The
//! encoded path is bit-identical to the plain one — same rows, same
//! order, same f64 accumulation sequence — and reports per-member
//! [`CubeStats::blocks_scanned`] / [`CubeStats::blocks_skipped`] /
//! [`CubeStats::bytes_scanned`]. See `docs/storage.md` for the proof
//! obligations and skip rules.

use crate::aggregate::Accumulator;
use crate::block::{CodeBlock, ColumnEncoding};
use crate::database::{ColumnRef, Database};
use crate::error::{RelationalError, Result};
use crate::fxhash::FxHashMap;
use crate::join::{JoinedRelation, RowResolver};
use crate::query::{AggColumn, AggFunction};
use crate::value::Value;

/// Maximum number of cube dimensions (packed 8 bits each into a `u64` key).
pub const MAX_DIMS: usize = 8;
/// Per-dimension code for "values not in the relevant set" (`InOrDefault`).
const OTHER: u8 = 254;
/// Per-dimension code for "dimension not grouped" (rolled up / unrestricted).
const ALL: u8 = 255;

/// Selects one dimension's slice of a cube result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimSel {
    /// Dimension unrestricted (rolled up).
    Any,
    /// Dimension fixed to the literal with this index in the cube's
    /// `relevant` list for that dimension.
    Literal(usize),
}

/// A packed group key: one byte per dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupKey(u64);

impl GroupKey {
    fn from_codes(codes: &[u8]) -> GroupKey {
        debug_assert!(codes.len() <= MAX_DIMS);
        let mut key = 0u64;
        for (i, &c) in codes.iter().enumerate() {
            key |= (c as u64) << (8 * i);
        }
        // Unused high bytes read as 0, which collides with literal index 0;
        // fill them with ALL so keys are unambiguous for any dim count.
        for i in codes.len()..MAX_DIMS {
            key |= (ALL as u64) << (8 * i);
        }
        GroupKey(key)
    }

    /// The code of dimension `dim`.
    #[inline]
    fn code(self, dim: usize) -> u8 {
        (self.0 >> (8 * dim)) as u8
    }

    /// Replace the code of dimension `dim` with ALL.
    fn rolled_up(self, dim: usize) -> GroupKey {
        GroupKey(self.0 | ((ALL as u64) << (8 * dim)))
    }
}

/// A cube query: aggregates over all predicate combinations on `dims`.
#[derive(Debug, Clone)]
pub struct CubeQuery {
    /// Cube dimensions (categorical or numeric columns used in predicates).
    pub dims: Vec<ColumnRef>,
    /// Relevant literals per dimension; everything else maps to `OTHER`.
    pub relevant: Vec<Vec<Value>>,
    /// Value aggregates to compute per group. Ratio aggregates are *not*
    /// allowed here — derive them from `Count` results (see
    /// [`crate::aggregate::ratio_from_counts`]).
    pub aggregates: Vec<(AggFunction, AggColumn)>,
}

/// Which accumulator grid the scan used (see the module docs for the
/// decision rule).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum GridMode {
    /// Flat mixed-radix accumulator array; no hashing on the hot path.
    Dense,
    /// `FxHashMap` keyed by packed group codes (high-cardinality fallback).
    #[default]
    Hashed,
}

/// Execution statistics, used by the Table 6 experiment instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CubeStats {
    pub rows_scanned: u64,
    pub finest_groups: u64,
    pub total_groups: u64,
    /// Scan worker threads actually used (1 = sequential).
    pub scan_threads: u32,
    /// Grid representation chosen by the structural decision rule.
    pub grid_mode: GridMode,
    /// Dense-grid cell count (the mixed-radix product); 0 when hashed.
    pub dense_cells: u64,
    /// Storage blocks decoded by the encoded scan path. 0 when the scan
    /// ran on plain columns (unsealed table, join scope, or numeric dim).
    pub blocks_scanned: u64,
    /// Storage blocks whose aggregates were bulk-applied from zone-map
    /// metadata alone — no per-row work, nothing decoded.
    pub blocks_skipped: u64,
    /// Encoded payload bytes physically read by the decoded blocks.
    pub bytes_scanned: u64,
    /// Partitions this scan folded separately before the ordered merge:
    /// the partition count when the relation spans more than one fixed
    /// partition ([`crate::block::partition_ranges`]), 0 for the
    /// degenerate single-partition scan (identical to a monolithic pass).
    /// A pure function of row count and [`CubeOptions::partition_blocks`]
    /// — never of worker count.
    pub partitions_scanned: u64,
    /// Ascending-order partition-grid merges this member performed
    /// (`partitions_scanned - 1` when partitioned, else 0).
    pub partition_merges: u64,
    /// Workers that scanned this pass's partitions: 1 for a sequential
    /// partitioned scan, the scoped worker count for
    /// [`CubeOptions::threads`] parallelism, the distinct scheduler
    /// workers for a partition-parallel fused pass, and 0 when the scan
    /// was not partitioned. A scheduling **gauge** — the only
    /// [`CubeStats`] field that may vary run to run; results never do.
    pub partition_parallelism: u32,
    /// 1 when this result was produced by patching a [`ScanCheckpoint`]
    /// forward over appended rows instead of a cold full scan, 0 otherwise.
    pub grids_patched: u64,
    /// Rows the patch delta scanned (the appended range plus the re-scanned
    /// partial tail partition); 0 for full scans. When set, it equals this
    /// result's `rows_scanned`.
    pub delta_rows_scanned: u64,
}

/// Tuning knobs for one cube execution. The defaults match the paper's
/// workload shape; [`CubeQuery::execute`] uses them unchanged, so existing
/// call sites keep their behavior.
#[derive(Debug, Clone, Copy)]
pub struct CubeOptions {
    /// Maximum mixed-radix product for the dense grid. Cubes above this
    /// fall back to the hashed grid. Setting 0 forces the hashed path
    /// (useful for testing and instrumentation).
    pub dense_cell_cap: usize,
    /// Worker threads for the scan (clamped to at least 1).
    pub threads: usize,
    /// Minimum rows per scan worker: the worker count is capped at
    /// `rows / parallel_row_threshold`, so relations smaller than twice
    /// this stay sequential — thread spawn plus grid merge would dominate.
    pub parallel_row_threshold: usize,
    /// Cap workers at `std::thread::available_parallelism()` (default).
    /// Disable to force the requested worker count — oversubscription
    /// only costs time, so this is mainly for deterministic tests of the
    /// partition-merge path.
    pub clamp_to_hardware: bool,
    /// Scan-partition span in storage blocks
    /// ([`crate::block::partition_ranges`]); 0 disables partitioning.
    /// Partition boundaries — and therefore f64 accumulation association —
    /// are a pure function of row count and this span, so **every** path
    /// (solo sequential, solo parallel, fused, scheduler fan-out) produces
    /// bit-identical results for a given span, at any worker count.
    pub partition_blocks: usize,
    /// Capture a [`ScanCheckpoint`] on eligible scans (identity relation,
    /// partitioned, patch-class aggregates only) so a later probe at a
    /// newer watermark can patch the grid forward over just the appended
    /// rows. Costs one grid clone per eligible scan; never changes results.
    pub capture_checkpoints: bool,
}

impl Default for CubeOptions {
    fn default() -> Self {
        CubeOptions {
            dense_cell_cap: 1 << 16,
            threads: 1,
            parallel_row_threshold: 4096,
            clamp_to_hardware: true,
            partition_blocks: crate::block::DEFAULT_PARTITION_BLOCKS,
            capture_checkpoints: true,
        }
    }
}

impl CubeOptions {
    /// Sequential execution with `threads` workers requested.
    pub fn with_threads(threads: usize) -> CubeOptions {
        CubeOptions {
            threads,
            ..CubeOptions::default()
        }
    }
}

/// The result of one cube execution: finished aggregate values for every
/// (dimension subset × relevant-literal combination) group.
#[derive(Debug, Clone)]
pub struct CubeResult {
    dims: Vec<ColumnRef>,
    relevant: Vec<Vec<Value>>,
    n_aggs: usize,
    groups: FxHashMap<GroupKey, Vec<Option<f64>>>,
    pub stats: CubeStats,
    /// Visible rows of the scanned relation when this result was computed
    /// — the watermark stamp delta-aware caching matches on. Differs from
    /// `stats.rows_scanned` on patched results (which scan only the delta).
    visible_rows: u64,
    /// Resumable scan prefix for future watermark patches, when the scan
    /// was eligible to capture one ([`CubeOptions::capture_checkpoints`]).
    /// Behind an `Arc` so cloning the result (cache insertion) stays cheap.
    checkpoint: Option<std::sync::Arc<ScanCheckpoint>>,
}

/// A resumable prefix of one cube's partitioned scan: the left-fold of
/// every partition grid fully below `rows` (a span-aligned boundary),
/// captured mid-fold. Patching clones the grid, scans only the partitions
/// covering `rows..new_watermark`, and folds them in the same ascending
/// order — the f64 accumulation tree is the cold scan's tree by
/// construction, so patched results are **bit-identical** to a cold full
/// scan at the same watermark.
///
/// Only captured for patch-class aggregate sets (`Count`/`Sum`/`Avg`/
/// `Min`/`Max`, whose partition merges are the exact fold the cold scan
/// performs); cubes with `CountDistinct` or `Median` recompute from
/// scratch at each watermark.
pub struct ScanCheckpoint {
    cube: CubeQuery,
    /// Span-aligned row boundary: partitions covering `0..rows` are folded
    /// into `grid`.
    rows: usize,
    partition_blocks: usize,
    dense_cell_cap: usize,
    grid: MemberGrid,
}

impl std::fmt::Debug for ScanCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanCheckpoint")
            .field("rows", &self.rows)
            .field("partition_blocks", &self.partition_blocks)
            .finish_non_exhaustive()
    }
}

impl ScanCheckpoint {
    /// The cube this checkpoint's grid belongs to — patching re-executes
    /// exactly this cube (its dimensions, literal coverage, and aggregate
    /// set) at the new watermark.
    pub fn cube(&self) -> &CubeQuery {
        &self.cube
    }

    /// The span-aligned row boundary this checkpoint's grid covers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether this checkpoint was captured under the same scan shape the
    /// given options would produce (same partition span, same dense/hashed
    /// decision inputs) — the precondition for patching with it.
    pub fn compatible(&self, options: &CubeOptions) -> bool {
        self.partition_blocks == options.partition_blocks
            && self.dense_cell_cap == options.dense_cell_cap
    }

    /// The prefix shape patch passes must share to scan one tail together:
    /// resume boundary, partition span, and dense-grid cap. The scheduler
    /// fuses patch tasks whose checkpoints agree on this (and on table
    /// scope) into a single delta pass.
    pub(crate) fn fuse_identity(&self) -> (usize, usize, usize) {
        (self.rows, self.partition_blocks, self.dense_cell_cap)
    }
}

// ---------------------------------------------------------------------------
// Per-dimension row → code translation
// ---------------------------------------------------------------------------

/// Maps a scan row to its dense dimension code: `0..n_lits` for relevant
/// literals, `n_lits` for the OTHER bucket (non-relevant values and NULLs).
enum DimCodec<'a> {
    /// String column: direct lookup table over dictionary codes. NULL cells
    /// carry `NULL_CODE = u32::MAX`, which is out of table range and thus
    /// reads OTHER without a branch on a separate null check.
    StrTable {
        resolver: RowResolver<'a>,
        codes: &'a [u32],
        table: Box<[u8]>,
        other: u8,
    },
    /// Numeric column: binary probe of a small sorted (group code → dim
    /// code) table. Relevant literal sets are tiny (≤ 253), so the probe is
    /// a handful of comparisons — still cheaper than hashing.
    Probe {
        resolver: RowResolver<'a>,
        col: &'a crate::column::ColumnData,
        table: Box<[(u64, u8)]>,
        other: u8,
    },
}

impl DimCodec<'_> {
    #[inline]
    fn dense_code(&self, row: usize) -> u8 {
        match self {
            DimCodec::StrTable {
                resolver,
                codes,
                table,
                other,
            } => {
                let code = codes[resolver.base_row(row)] as usize;
                if code < table.len() {
                    table[code]
                } else {
                    *other
                }
            }
            DimCodec::Probe {
                resolver,
                col,
                table,
                other,
            } => match col.group_code(resolver.base_row(row)) {
                Some(gc) => match table.binary_search_by_key(&gc, |entry| entry.0) {
                    Ok(i) => table[i].1,
                    Err(_) => *other,
                },
                None => *other,
            },
        }
    }
}

fn build_codec<'a>(
    db: &'a Database,
    relation: &'a JoinedRelation,
    dim: ColumnRef,
    literals: &[Value],
) -> DimCodec<'a> {
    let col = db.column(dim);
    let resolver = relation.resolver(dim);
    let other = literals.len() as u8;
    match col.codes() {
        Some(codes) => {
            let dict_len = col.dictionary().map_or(0, |d| d.len());
            let mut table = vec![other; dict_len].into_boxed_slice();
            for (i, lit) in literals.iter().enumerate() {
                // Literals absent from the column never match a row; later
                // duplicates (e.g. case-insensitive twins) win, matching the
                // lookup-map semantics of the original implementation.
                if let Some(code) = col.group_code_of(lit) {
                    table[code as usize] = i as u8;
                }
            }
            DimCodec::StrTable {
                resolver,
                codes,
                table,
                other,
            }
        }
        None => {
            let mut entries: Vec<(u64, u8)> = Vec::with_capacity(literals.len());
            for (i, lit) in literals.iter().enumerate() {
                if let Some(code) = col.group_code_of(lit) {
                    entries.push((code, i as u8));
                }
            }
            entries.sort_by_key(|entry| entry.0);
            // Duplicate group codes: keep the last literal index.
            entries.reverse();
            entries.dedup_by_key(|entry| entry.0);
            entries.reverse();
            DimCodec::Probe {
                resolver,
                col,
                table: entries.into_boxed_slice(),
                other,
            }
        }
    }
}

/// One aggregate's input columns: `None` for `COUNT(*)`.
type AggCtx<'a> = Option<(RowResolver<'a>, &'a crate::column::ColumnData)>;

#[inline]
fn update_accumulators(accs: &mut [Accumulator], agg_ctx: &[AggCtx<'_>], row: usize) {
    for (acc, ctx) in accs.iter_mut().zip(agg_ctx) {
        match ctx {
            None => acc.update(None, None, true),
            Some((res, col)) => {
                let base = res.base_row(row);
                acc.update(col.get_f64(base), col.group_code(base), !col.is_null(base));
            }
        }
    }
}

fn new_accumulators(aggregates: &[(AggFunction, AggColumn)]) -> Vec<Accumulator> {
    aggregates
        .iter()
        .map(|(f, _)| Accumulator::new(*f))
        .collect()
}

// ---------------------------------------------------------------------------
// Scan grids
// ---------------------------------------------------------------------------

/// Rows per scan block: cell indices for a block are computed first, then
/// each aggregate sweeps the block in a loop specialized to its kind. This
/// hoists the aggregate dispatch out of the per-row hot path and keeps the
/// touched cells resident in cache.
///
/// Pinned to the storage block size so one scan chunk is exactly one
/// compressed block ([`crate::block`]): the encoded path consults one zone
/// map, decodes (or bulk-applies) one block, and fires the chaos hook once
/// per chunk per dense member — the same cadence as the plain path.
const SCAN_BLOCK: usize = 2048;
const _: () = assert!(SCAN_BLOCK == crate::block::BLOCK_ROWS);

/// Arena-reuse counters (see [`GridArena::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers served from the pool (no allocation).
    pub reuses: u64,
    /// Buffers freshly allocated because the pool was empty.
    pub allocations: u64,
}

#[derive(Debug, Default)]
struct ArenaPools {
    counts: Vec<Vec<u64>>,
    floats: Vec<Vec<f64>>,
    options: Vec<Vec<Option<f64>>>,
    flags: Vec<Vec<bool>>,
    stats: ArenaStats,
}

impl ArenaPools {
    fn take<T: Copy>(
        pool: &mut Vec<Vec<T>>,
        stats: &mut ArenaStats,
        cells: usize,
        zero: T,
    ) -> Vec<T> {
        match pool.pop() {
            Some(mut buf) => {
                stats.reuses += 1;
                buf.clear();
                buf.resize(cells, zero);
                buf
            }
            None => {
                stats.allocations += 1;
                vec![zero; cells]
            }
        }
    }
}

/// A reusable pool of dense-grid buffers, persisted **across cube
/// executions** so repeated scans over the same database stop paying one
/// round of large allocations each (ROADMAP: "persist per-thread grids").
///
/// The pool is internally synchronized, so one arena may serve the scan
/// workers of a parallel execution; the intended deployment is **one arena
/// per worker thread of a batch** (see `agg_core::pipeline::BatchVerifier`),
/// where take/recycle never contend.
#[derive(Debug, Default)]
pub struct GridArena {
    pools: parking_lot::Mutex<ArenaPools>,
}

impl GridArena {
    pub fn new() -> GridArena {
        GridArena::default()
    }

    pub fn stats(&self) -> ArenaStats {
        self.pools.lock().stats
    }

    fn take_counts(&self, cells: usize) -> Vec<u64> {
        let mut pools = self.pools.lock();
        let ArenaPools { counts, stats, .. } = &mut *pools;
        ArenaPools::take(counts, stats, cells, 0)
    }

    fn take_floats(&self, cells: usize) -> Vec<f64> {
        let mut pools = self.pools.lock();
        let ArenaPools { floats, stats, .. } = &mut *pools;
        ArenaPools::take(floats, stats, cells, 0.0)
    }

    fn take_options(&self, cells: usize) -> Vec<Option<f64>> {
        let mut pools = self.pools.lock();
        let ArenaPools { options, stats, .. } = &mut *pools;
        ArenaPools::take(options, stats, cells, None)
    }

    fn take_flags(&self, cells: usize) -> Vec<bool> {
        let mut pools = self.pools.lock();
        let ArenaPools { flags, stats, .. } = &mut *pools;
        ArenaPools::take(flags, stats, cells, false)
    }

    fn recycle_counts(&self, buf: Vec<u64>) {
        self.pools.lock().counts.push(buf);
    }

    fn recycle_floats(&self, buf: Vec<f64>) {
        self.pools.lock().floats.push(buf);
    }

    fn recycle_options(&self, buf: Vec<Option<f64>>) {
        self.pools.lock().options.push(buf);
    }

    fn recycle_flags(&self, buf: Vec<bool>) {
        self.pools.lock().flags.push(buf);
    }
}

/// One aggregate's dense per-cell state, struct-of-arrays style. Compared
/// with a `Vec<Accumulator>` grid this removes the enum tag from every cell
/// and lets each block sweep run branch-free on plain arrays.
#[derive(Clone)]
enum DenseAggState {
    Count(Vec<u64>),
    CountDistinct(Vec<crate::fxhash::FxHashSet<u64>>),
    SumAvg {
        sums: Vec<f64>,
        counts: Vec<u64>,
        is_avg: bool,
    },
    MinMax {
        extremes: Vec<Option<f64>>,
        is_max: bool,
    },
    Median(Vec<Vec<f64>>),
}

impl DenseAggState {
    /// Create one aggregate's dense cell state, drawing the flat buffers
    /// from `arena` when one is provided. Set- and list-valued states
    /// (count-distinct, median) allocate per cell regardless, so they skip
    /// the pool.
    fn new_in(function: AggFunction, cells: usize, arena: Option<&GridArena>) -> DenseAggState {
        match function {
            AggFunction::Count => DenseAggState::Count(match arena {
                Some(a) => a.take_counts(cells),
                None => vec![0; cells],
            }),
            AggFunction::CountDistinct => {
                DenseAggState::CountDistinct(vec![crate::fxhash::FxHashSet::default(); cells])
            }
            AggFunction::Sum | AggFunction::Avg => DenseAggState::SumAvg {
                sums: match arena {
                    Some(a) => a.take_floats(cells),
                    None => vec![0.0; cells],
                },
                counts: match arena {
                    Some(a) => a.take_counts(cells),
                    None => vec![0; cells],
                },
                is_avg: function == AggFunction::Avg,
            },
            AggFunction::Min | AggFunction::Max => DenseAggState::MinMax {
                extremes: match arena {
                    Some(a) => a.take_options(cells),
                    None => vec![None; cells],
                },
                is_max: function == AggFunction::Max,
            },
            AggFunction::Median => DenseAggState::Median(vec![Vec::new(); cells]),
            AggFunction::Percentage | AggFunction::ConditionalProbability => {
                unreachable!("validate() rejects ratio aggregates")
            }
        }
    }

    /// Return this state's flat buffers to the arena for the next execution.
    fn recycle(self, arena: &GridArena) {
        match self {
            DenseAggState::Count(counts) => arena.recycle_counts(counts),
            DenseAggState::SumAvg { sums, counts, .. } => {
                arena.recycle_floats(sums);
                arena.recycle_counts(counts);
            }
            DenseAggState::MinMax { extremes, .. } => arena.recycle_options(extremes),
            // Per-cell heap states are dropped; pooling them buys nothing.
            DenseAggState::CountDistinct(_) | DenseAggState::Median(_) => {}
        }
    }

    /// Fold one block of rows (`first_row + k` for `cells[k]`) into the grid.
    fn update_block(&mut self, cells: &[u32], first_row: usize, ctx: &AggCtx<'_>) {
        match (self, ctx) {
            (DenseAggState::Count(counts), None) => {
                // COUNT(*): every row counts.
                for &cell in cells {
                    counts[cell as usize] += 1;
                }
            }
            (DenseAggState::Count(counts), Some((res, col))) => {
                for (k, &cell) in cells.iter().enumerate() {
                    if !col.is_null(res.base_row(first_row + k)) {
                        counts[cell as usize] += 1;
                    }
                }
            }
            (DenseAggState::CountDistinct(sets), Some((res, col))) => {
                for (k, &cell) in cells.iter().enumerate() {
                    if let Some(code) = col.group_code(res.base_row(first_row + k)) {
                        sets[cell as usize].insert(code);
                    }
                }
            }
            (DenseAggState::SumAvg { sums, counts, .. }, Some((res, col))) => {
                for (k, &cell) in cells.iter().enumerate() {
                    if let Some(v) = col.get_f64(res.base_row(first_row + k)) {
                        sums[cell as usize] += v;
                        counts[cell as usize] += 1;
                    }
                }
            }
            (DenseAggState::MinMax { extremes, is_max }, Some((res, col))) => {
                let is_max = *is_max;
                for (k, &cell) in cells.iter().enumerate() {
                    if let Some(v) = col.get_f64(res.base_row(first_row + k)) {
                        let e = &mut extremes[cell as usize];
                        *e = Some(match *e {
                            None => v,
                            Some(cur) if is_max => cur.max(v),
                            Some(cur) => cur.min(v),
                        });
                    }
                }
            }
            (DenseAggState::Median(values), Some((res, col))) => {
                for (k, &cell) in cells.iter().enumerate() {
                    if let Some(v) = col.get_f64(res.base_row(first_row + k)) {
                        values[cell as usize].push(v);
                    }
                }
            }
            // `*` as input to value aggregates contributes nothing (matches
            // `Accumulator::update(None, None, true)`).
            _ => {}
        }
    }

    /// Merge another partition's state for `cell` into this one.
    fn merge_cell(&mut self, other: &mut DenseAggState, cell: usize) {
        match (self, other) {
            (DenseAggState::Count(a), DenseAggState::Count(b)) => a[cell] += b[cell],
            (DenseAggState::CountDistinct(a), DenseAggState::CountDistinct(b)) => {
                if a[cell].is_empty() {
                    a[cell] = std::mem::take(&mut b[cell]);
                } else {
                    a[cell].extend(b[cell].iter().copied());
                }
            }
            (
                DenseAggState::SumAvg { sums, counts, .. },
                DenseAggState::SumAvg {
                    sums: s2,
                    counts: c2,
                    ..
                },
            ) => {
                sums[cell] += s2[cell];
                counts[cell] += c2[cell];
            }
            (
                DenseAggState::MinMax { extremes, is_max },
                DenseAggState::MinMax { extremes: e2, .. },
            ) => {
                if let Some(v) = e2[cell] {
                    let e = &mut extremes[cell];
                    *e = Some(match *e {
                        None => v,
                        Some(cur) if *is_max => cur.max(v),
                        Some(cur) => cur.min(v),
                    });
                }
            }
            (DenseAggState::Median(a), DenseAggState::Median(b)) => {
                if a[cell].is_empty() {
                    a[cell] = std::mem::take(&mut b[cell]);
                } else {
                    a[cell].append(&mut b[cell]);
                }
            }
            _ => unreachable!("partitions share the aggregate list"),
        }
    }

    /// Convert one cell into the [`Accumulator`] the rollup consumes,
    /// draining owned state (sets, median buffers) instead of cloning.
    fn take_accumulator(&mut self, cell: usize) -> Accumulator {
        match self {
            DenseAggState::Count(counts) => Accumulator::Count(counts[cell]),
            DenseAggState::CountDistinct(sets) => {
                Accumulator::CountDistinct(std::mem::take(&mut sets[cell]))
            }
            DenseAggState::SumAvg {
                sums,
                counts,
                is_avg: false,
            } => Accumulator::Sum {
                sum: sums[cell],
                n: counts[cell],
            },
            DenseAggState::SumAvg { sums, counts, .. } => Accumulator::Avg {
                sum: sums[cell],
                n: counts[cell],
            },
            DenseAggState::MinMax {
                extremes,
                is_max: false,
            } => Accumulator::Min(extremes[cell]),
            DenseAggState::MinMax { extremes, .. } => Accumulator::Max(extremes[cell]),
            DenseAggState::Median(values) => Accumulator::Median(std::mem::take(&mut values[cell])),
        }
    }
}

/// Flat mixed-radix grid for one scan partition.
#[derive(Clone)]
struct DenseGrid {
    aggs: Vec<DenseAggState>,
    touched: Vec<bool>,
}

impl DenseGrid {
    fn new_in(
        cells: usize,
        aggregates: &[(AggFunction, AggColumn)],
        arena: Option<&GridArena>,
    ) -> DenseGrid {
        DenseGrid {
            aggs: aggregates
                .iter()
                .map(|(f, _)| DenseAggState::new_in(*f, cells, arena))
                .collect(),
            touched: match arena {
                Some(a) => a.take_flags(cells),
                None => vec![false; cells],
            },
        }
    }

    /// Return every pooled buffer to the arena. `touched` may already have
    /// been taken by the finest-group extraction; recycle whatever is left.
    fn recycle_into(self, arena: &GridArena) {
        for state in self.aggs {
            state.recycle(arena);
        }
        if self.touched.capacity() > 0 {
            arena.recycle_flags(self.touched);
        }
    }

    /// Fold one block of rows (`row..row + len`) into the grid. Exposed
    /// separately from [`DenseGrid::scan`] so a fused multi-cube pass can
    /// interleave the blocks of several grids over one row stream while
    /// keeping each grid's accumulation sequence identical to a solo scan.
    fn scan_block(
        &mut self,
        row: usize,
        len: usize,
        codecs: &[DimCodec<'_>],
        strides: &[usize],
        agg_ctx: &[AggCtx<'_>],
        cellbuf: &mut [u32; SCAN_BLOCK],
    ) {
        // Named chaos hook: `scan_block` runs inside solo scans and fused
        // multi-cube passes alike, so an installed fault plan can inject a
        // panic (worker death mid-pass) or a delay (slow scan) here.
        #[cfg(any(test, feature = "chaos"))]
        crate::chaos::scan_block_cross();
        for (k, slot) in cellbuf[..len].iter_mut().enumerate() {
            let mut cell = 0usize;
            for (codec, stride) in codecs.iter().zip(strides) {
                cell += codec.dense_code(row + k) as usize * stride;
            }
            self.touched[cell] = true;
            *slot = cell as u32;
        }
        for (state, ctx) in self.aggs.iter_mut().zip(agg_ctx) {
            state.update_block(&cellbuf[..len], row, ctx);
        }
    }

    /// Fold storage block `block_idx` (rows `row..row + len`) into the grid
    /// **from its compressed encoding** — the encoded twin of
    /// [`DenseGrid::scan_block`], bit-identical to it by construction:
    ///
    /// * If the zone maps prove every dimension constant over the block
    ///   and all aggregates are plain counts, the block is *bulk-applied*
    ///   — one `+= len` per count, no decode (`blocks_skipped`).
    /// * If the dimensions are constant but an aggregate needs row values,
    ///   the constant cell is splatted into `cellbuf` and aggregates run
    ///   row-at-a-time over the plain columns — the dimension decode is
    ///   still saved.
    /// * Otherwise each dimension's block decodes straight into the
    ///   mixed-radix `cellbuf` (RLE runs add their constant contribution
    ///   over the whole span; bit-packed codes unpack row-at-a-time) with
    ///   no intermediate code vector, then aggregates sweep exactly as in
    ///   the plain path (`blocks_scanned` / `bytes_scanned`).
    #[allow(clippy::too_many_arguments)]
    fn scan_block_encoded(
        &mut self,
        row: usize,
        len: usize,
        block_idx: usize,
        plan: &ScanPlan<'_>,
        enc: &EncodedMember<'_>,
        cellbuf: &mut [u32; SCAN_BLOCK],
        tally: &mut BlockTally,
    ) {
        // Same chaos-hook cadence as the plain `scan_block`: once per
        // block per dense member, whichever branch handles the block.
        #[cfg(any(test, feature = "chaos"))]
        crate::chaos::scan_block_cross();
        if let Some(cell) = enc.constant_cell(block_idx, &plan.codecs, &plan.strides) {
            self.touched[cell] = true;
            if enc.counts_only {
                // Counts are order-insensitive integers: adding `len` at
                // once is bit-identical to `len` increments. When the
                // visibility watermark cuts this block mid-way (`len` is
                // shorter than the stored block) the sealed zone map's
                // null count over-counts: use the visible prefix's null
                // count instead — exact from the code blocks, or counted
                // from the plain column for zone-only numeric encodings.
                let stored = (enc.physical_rows - block_idx * SCAN_BLOCK).min(SCAN_BLOCK);
                for ((state, agg_enc), ctx) in self
                    .aggs
                    .iter_mut()
                    .zip(&enc.agg_encodings)
                    .zip(&plan.agg_ctx)
                {
                    let DenseAggState::Count(counts) = state else {
                        unreachable!("counts_only guarantees Count states")
                    };
                    let nulls = match agg_enc {
                        None => 0,
                        Some(e) if len >= stored => e.block_null_count(block_idx) as usize,
                        Some(e) => match e.prefix_null_count(block_idx, len) {
                            Some(n) => n as usize,
                            None => {
                                let Some((res, col)) = ctx else {
                                    unreachable!("count with an input column has a ctx")
                                };
                                (row..row + len)
                                    .filter(|&r| col.is_null(res.base_row(r)))
                                    .count()
                            }
                        },
                    };
                    counts[cell] += (len - nulls) as u64;
                }
                tally.blocks_skipped += 1;
                return;
            }
            // Value aggregates (Sum/Min/...) must see rows one at a time
            // to keep f64 accumulation order identical; only the
            // dimension decode is skipped.
            cellbuf[..len].fill(cell as u32);
        } else {
            cellbuf[..len].fill(0);
            for (dim, codec) in enc.dims.iter().zip(&plan.codecs) {
                let DimCodec::StrTable { table, other, .. } = codec else {
                    unreachable!("encoded members have table codecs only")
                };
                let block = &dim.blocks[block_idx];
                block.add_dense_into(table, *other, dim.stride, &mut cellbuf[..len]);
                tally.bytes_scanned += block.encoded_bytes();
            }
            for &cell in &cellbuf[..len] {
                self.touched[cell as usize] = true;
            }
        }
        for (state, ctx) in self.aggs.iter_mut().zip(&plan.agg_ctx) {
            state.update_block(&cellbuf[..len], row, ctx);
        }
        tally.blocks_scanned += 1;
    }

    fn merge(&mut self, other: &mut DenseGrid) {
        for (cell, touched) in other.touched.iter().enumerate() {
            if !touched {
                continue;
            }
            self.touched[cell] = true;
            for (a, b) in self.aggs.iter_mut().zip(other.aggs.iter_mut()) {
                a.merge_cell(b, cell);
            }
        }
    }
}

/// Hashed accumulator grid for one scan partition, keyed by packed dense
/// codes (8 bits per dimension).
#[derive(Clone)]
struct HashedGrid {
    groups: FxHashMap<u64, Vec<Accumulator>>,
}

impl HashedGrid {
    fn new() -> HashedGrid {
        HashedGrid {
            groups: FxHashMap::default(),
        }
    }

    fn scan(
        &mut self,
        rows: std::ops::Range<usize>,
        codecs: &[DimCodec<'_>],
        aggregates: &[(AggFunction, AggColumn)],
        agg_ctx: &[AggCtx<'_>],
    ) {
        for row in rows {
            let mut key = 0u64;
            for (i, codec) in codecs.iter().enumerate() {
                key |= (codec.dense_code(row) as u64) << (8 * i);
            }
            let accs = self
                .groups
                .entry(key)
                .or_insert_with(|| new_accumulators(aggregates));
            update_accumulators(accs, agg_ctx, row);
        }
    }

    fn merge(&mut self, other: HashedGrid) {
        for (key, accs) in other.groups {
            match self.groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(&accs) {
                        a.merge(b);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(accs);
                }
            }
        }
    }
}

impl CubeQuery {
    /// Validate structural limits and aggregate kinds.
    pub fn validate(&self) -> Result<()> {
        if self.dims.len() > MAX_DIMS {
            return Err(RelationalError::InvalidQuery(format!(
                "cube supports at most {MAX_DIMS} dimensions, got {}",
                self.dims.len()
            )));
        }
        if self.relevant.len() != self.dims.len() {
            return Err(RelationalError::InvalidQuery(
                "one relevant-literal list per dimension required".into(),
            ));
        }
        for lits in &self.relevant {
            if lits.len() >= OTHER as usize {
                return Err(RelationalError::InvalidQuery(format!(
                    "at most {} relevant literals per dimension",
                    OTHER - 1
                )));
            }
        }
        for (f, _) in &self.aggregates {
            if f.is_ratio() {
                return Err(RelationalError::InvalidQuery(
                    "ratio aggregates must be derived from Count cube results".into(),
                ));
            }
        }
        Ok(())
    }

    /// Tables referenced by dimensions and aggregation columns.
    pub fn tables_referenced(&self) -> Vec<usize> {
        let mut tables: Vec<usize> = self.dims.iter().map(|d| d.table).collect();
        for (_, col) in &self.aggregates {
            if let AggColumn::Column(c) = col {
                tables.push(c.table);
            }
        }
        tables.sort_unstable();
        tables.dedup();
        if tables.is_empty() {
            tables.push(0);
        }
        tables
    }

    /// Execute the cube against the database with default options.
    pub fn execute(&self, db: &Database) -> Result<CubeResult> {
        self.execute_with(db, &CubeOptions::default())
    }

    /// Execute the cube with explicit tuning options.
    pub fn execute_with(&self, db: &Database, options: &CubeOptions) -> Result<CubeResult> {
        self.execute_in(db, options, None)
    }

    /// Execute with explicit options, drawing dense-grid buffers from (and
    /// returning them to) `arena` when one is provided.
    pub fn execute_in(
        &self,
        db: &Database,
        options: &CubeOptions,
        arena: Option<&GridArena>,
    ) -> Result<CubeResult> {
        let relation = JoinedRelation::for_tables(db, &self.tables_referenced())?;
        self.execute_on_in(db, &relation, options, arena)
    }

    /// Execute against a pre-materialized join with default options.
    pub fn execute_on(&self, db: &Database, relation: &JoinedRelation) -> Result<CubeResult> {
        self.execute_on_with(db, relation, &CubeOptions::default())
    }

    /// Execute against a pre-materialized join with explicit options.
    pub fn execute_on_with(
        &self,
        db: &Database,
        relation: &JoinedRelation,
        options: &CubeOptions,
    ) -> Result<CubeResult> {
        self.execute_on_in(db, relation, options, None)
    }

    /// The full execution entry point: pre-materialized join, explicit
    /// options, optional grid arena. A solo execution is a one-member
    /// fused pass — both drain through `execute_members_on_in`, so the
    /// partition shape, merge order, and therefore every f64 bit are
    /// shared by construction.
    pub fn execute_on_in(
        &self,
        db: &Database,
        relation: &JoinedRelation,
        options: &CubeOptions,
        arena: Option<&GridArena>,
    ) -> Result<CubeResult> {
        let mut results = execute_members_on_in(db, relation, &[self], options, arena)?;
        Ok(results.pop().expect("one member, one result"))
    }

    /// Build the per-row translation state for one scan of this cube:
    /// dimension codecs, aggregate input columns, and the dense-grid shape
    /// (mixed-radix strides, or `cells: None` for the hashed fallback).
    fn scan_plan<'a>(
        &self,
        db: &'a Database,
        relation: &'a JoinedRelation,
        dense_cell_cap: usize,
    ) -> ScanPlan<'a> {
        let codecs: Vec<DimCodec<'a>> = self
            .dims
            .iter()
            .zip(&self.relevant)
            .map(|(dim, lits)| build_codec(db, relation, *dim, lits))
            .collect();
        let agg_ctx: Vec<AggCtx<'a>> = self
            .aggregates
            .iter()
            .map(|(_, col)| {
                col.as_column()
                    .map(|c| (relation.resolver(c), db.column(c)))
            })
            .collect();
        // Structural decision rule: dense iff the mixed-radix product of
        // (literals + OTHER) per dimension fits the configured cap.
        let radices: Vec<usize> = self.relevant.iter().map(|lits| lits.len() + 1).collect();
        let cells = radices.iter().try_fold(1usize, |acc, &r| {
            acc.checked_mul(r).filter(|&c| c <= dense_cell_cap)
        });
        let mut strides = vec![0usize; radices.len()];
        let mut stride = 1;
        for (s, radix) in strides.iter_mut().zip(&radices) {
            *s = stride;
            stride *= radix;
        }
        let encoded = if cells.is_some() {
            self.encoded_member(db, relation, &codecs, &strides)
        } else {
            None
        };
        ScanPlan {
            codecs,
            agg_ctx,
            radices,
            strides,
            cells,
            encoded,
        }
    }

    /// Build the compressed-block scan state for this cube, when eligible:
    /// the relation must be a single table scanned in storage order, the
    /// table must be sealed, and every dimension must be dictionary-coded
    /// (numeric dimensions probe per row and keep the plain path). Any
    /// miss returns `None` — the scan falls back to plain columns with
    /// identical results.
    fn encoded_member<'a>(
        &self,
        db: &'a Database,
        relation: &JoinedRelation,
        codecs: &[DimCodec<'a>],
        strides: &[usize],
    ) -> Option<EncodedMember<'a>> {
        if !relation.is_identity() {
            return None;
        }
        let table_idx = *relation.tables.first()?;
        let encodings = db.table(table_idx).encodings()?;
        let mut dims = Vec::with_capacity(self.dims.len());
        for ((dim, lits), stride) in self.dims.iter().zip(&self.relevant).zip(strides) {
            if !matches!(codecs[dims.len()], DimCodec::StrTable { .. }) {
                return None;
            }
            let blocks = encodings[dim.column].code_blocks()?;
            let col = db.column(*dim);
            let mut lit_codes: Vec<u32> = lits
                .iter()
                .filter_map(|lit| col.group_code_of(lit).map(|c| c as u32))
                .collect();
            lit_codes.sort_unstable();
            lit_codes.dedup();
            dims.push(EncodedDim {
                blocks,
                lit_codes,
                stride: *stride as u32,
            });
        }
        let agg_encodings = self
            .aggregates
            .iter()
            .map(|(_, col)| col.as_column().map(|c| &encodings[c.column]))
            .collect();
        let counts_only = self
            .aggregates
            .iter()
            .all(|(f, _)| *f == AggFunction::Count);
        Some(EncodedMember {
            dims,
            agg_encodings,
            counts_only,
            physical_rows: db.table(table_idx).row_count(),
        })
    }

    /// Turn one finished scan grid into the cube's [`CubeResult`]: extract
    /// finest groups in deterministic order, roll up, finish accumulators.
    #[allow(clippy::too_many_arguments)]
    fn finish_scan(
        &self,
        grid: MemberGrid,
        plan: &ScanPlan<'_>,
        n_rows: usize,
        scan_threads: u32,
        tally: BlockTally,
        parts: PartitionMeta,
        arena: Option<&GridArena>,
    ) -> CubeResult {
        let d = self.dims.len();
        let (finest, grid_mode, dense_cells) = match grid {
            MemberGrid::Dense(mut grid) => {
                // Convert touched cells (in deterministic cell order) to
                // packed group keys: dense code n_lits ⇒ OTHER byte.
                let mut finest = Vec::new();
                let touched = std::mem::take(&mut grid.touched);
                for (cell, touched) in touched.iter().enumerate() {
                    if !touched {
                        continue;
                    }
                    let cell_accs: Vec<Accumulator> = grid
                        .aggs
                        .iter_mut()
                        .map(|state| state.take_accumulator(cell))
                        .collect();
                    let mut codes = [0u8; MAX_DIMS];
                    for (i, code) in codes.iter_mut().take(d).enumerate() {
                        let dc = (cell / plan.strides[i]) % plan.radices[i];
                        *code = if dc == plan.radices[i] - 1 {
                            OTHER
                        } else {
                            dc as u8
                        };
                    }
                    finest.push((GroupKey::from_codes(&codes[..d]), cell_accs));
                }
                if let Some(arena) = arena {
                    arena.recycle_flags(touched);
                    grid.recycle_into(arena);
                }
                let cells = plan.cells.expect("dense grid implies dense cells") as u64;
                (finest, GridMode::Dense, cells)
            }
            MemberGrid::Hashed(grid) => {
                let mut finest: Vec<(GroupKey, Vec<Accumulator>)> = grid
                    .groups
                    .into_iter()
                    .map(|(key, accs)| {
                        let mut codes = [0u8; MAX_DIMS];
                        for (i, (code, radix)) in codes.iter_mut().zip(&plan.radices).enumerate() {
                            let dc = ((key >> (8 * i)) & 0xff) as usize;
                            *code = if dc == radix - 1 { OTHER } else { dc as u8 };
                        }
                        (GroupKey::from_codes(&codes[..d]), accs)
                    })
                    .collect();
                // Deterministic rollup order regardless of hash iteration.
                finest.sort_unstable_by_key(|(key, _)| *key);
                (finest, GridMode::Hashed, 0)
            }
        };

        let finest_groups = finest.len() as u64;
        let (keys, accs_arena) = rollup(finest, d);

        let stats = CubeStats {
            rows_scanned: n_rows as u64,
            finest_groups,
            total_groups: accs_arena.len() as u64,
            scan_threads,
            grid_mode,
            dense_cells,
            blocks_scanned: tally.blocks_scanned,
            blocks_skipped: tally.blocks_skipped,
            bytes_scanned: tally.bytes_scanned,
            partitions_scanned: parts.partitions_scanned,
            partition_merges: parts.partition_merges,
            partition_parallelism: parts.partition_parallelism,
            grids_patched: 0,
            delta_rows_scanned: 0,
        };
        let groups = keys
            .into_iter()
            .zip(&accs_arena)
            .map(|(k, accs)| (k, accs.iter().map(Accumulator::finish).collect()))
            .collect();
        CubeResult {
            dims: self.dims.clone(),
            relevant: self.relevant.clone(),
            n_aggs: self.aggregates.len(),
            groups,
            stats,
            visible_rows: n_rows as u64,
            checkpoint: None,
        }
    }
}

/// One cube's scan state inside a (possibly fused) pass.
#[derive(Clone)]
enum MemberGrid {
    Dense(DenseGrid),
    Hashed(HashedGrid),
}

/// Per-cube row→grid translation state for one scan: dimension codecs,
/// aggregate input columns, and the mixed-radix shape. Built once per pass
/// per member cube.
struct ScanPlan<'a> {
    codecs: Vec<DimCodec<'a>>,
    agg_ctx: Vec<AggCtx<'a>>,
    radices: Vec<usize>,
    strides: Vec<usize>,
    /// Dense-grid cell count; `None` sends the cube to the hashed grid.
    cells: Option<usize>,
    /// Compressed-block scan state, when this member is eligible to run
    /// directly on the sealed table's encodings (see
    /// [`CubeQuery::encoded_member`]); `None` falls back to plain columns.
    encoded: Option<EncodedMember<'a>>,
}

/// Per-member block counters accrued by one sequential scan pass.
#[derive(Debug, Clone, Copy, Default)]
struct BlockTally {
    blocks_scanned: u64,
    blocks_skipped: u64,
    bytes_scanned: u64,
}

/// One dimension's encoded-scan state.
struct EncodedDim<'a> {
    /// The dimension column's compressed code blocks, aligned with the
    /// scan chunks (one block per [`SCAN_BLOCK`] rows from row 0).
    blocks: &'a [CodeBlock],
    /// Sorted dictionary codes of this dimension's relevant literals —
    /// the zone-map probe set: a block whose `[min_code, max_code]` range
    /// contains none of these maps every row to OTHER.
    lit_codes: Vec<u32>,
    /// The dimension's mixed-radix stride, pre-narrowed for the decoder.
    stride: u32,
}

/// Everything a dense member needs to scan compressed blocks instead of
/// plain columns.
struct EncodedMember<'a> {
    dims: Vec<EncodedDim<'a>>,
    /// Per-aggregate encoding of the input column (`None` for `COUNT(*)`),
    /// consulted for per-block null counts during bulk application.
    agg_encodings: Vec<Option<&'a ColumnEncoding>>,
    /// Every aggregate is a plain `Count` — the only aggregates whose
    /// run-length-batched application is bit-identical to row-at-a-time
    /// (integer, order-insensitive). `Sum` is excluded deliberately:
    /// `v * n` is not the same f64 as `n` sequential additions.
    counts_only: bool,
    /// Physical rows of the scanned table — the encodings cover all of
    /// them, so `min(physical_rows - b·SCAN_BLOCK, SCAN_BLOCK)` is block
    /// `b`'s stored length, against which a scan chunk detects that a
    /// watermark left the block only partially visible.
    physical_rows: usize,
}

impl EncodedMember<'_> {
    /// The single grid cell every row of block `block_idx` lands in, if the
    /// zone maps can prove it: each dimension must either be one run (one
    /// value, or all-NULL) or have no relevant literal inside its
    /// `[min_code, max_code]` range (then every row — NULLs included —
    /// maps to OTHER). Returns `None` as soon as one dimension may vary.
    fn constant_cell(
        &self,
        block_idx: usize,
        codecs: &[DimCodec<'_>],
        strides: &[usize],
    ) -> Option<usize> {
        let mut cell = 0usize;
        for (dim, (codec, stride)) in self.dims.iter().zip(codecs.iter().zip(strides)) {
            let DimCodec::StrTable { table, other, .. } = codec else {
                unreachable!("encoded members have table codecs only")
            };
            let zone = dim.blocks[block_idx].zone();
            let dense = if zone.run_count == 1 {
                // One run: a single non-null value, or an all-NULL block
                // (NULL counts as a run value, so any NULL means all-NULL).
                if zone.null_count > 0 {
                    *other
                } else if (zone.min_code as usize) < table.len() {
                    table[zone.min_code as usize]
                } else {
                    *other
                }
            } else {
                // No literal inside the zone range ⇒ every row is OTHER.
                // All-NULL blocks satisfy this vacuously (min > max).
                let from = dim.lit_codes.partition_point(|&c| c < zone.min_code);
                if dim.lit_codes.get(from).is_some_and(|&c| c <= zone.max_code) {
                    return None;
                }
                *other
            };
            cell += dense as usize * stride;
        }
        Some(cell)
    }
}

/// Execute several cubes over **one shared row pass** (the fused multi-cube
/// scan): every member must reference exactly the same table scope, the
/// joined relation is materialized once, and each row is folded into every
/// member's own grid — per-grid mixed-radix LUTs, per-grid dense/hashed
/// decision, per-grid [`CubeStats`].
///
/// Grids are updated in member order within each row block, and each grid
/// sees the rows in relation order, so every member's accumulation
/// sequence — and therefore every f64 result — is **bit-identical** to a
/// solo sequential [`CubeQuery::execute_in`] of that cube. The scan is
/// always sequential: fused passes draw their parallelism from running
/// many passes at once (`crate::schedule`), which is what keeps results
/// independent of worker counts.
pub fn execute_fused_in(
    db: &Database,
    cubes: &[&CubeQuery],
    options: &CubeOptions,
    arena: Option<&GridArena>,
) -> Result<Vec<CubeResult>> {
    let Some(first) = cubes.first() else {
        return Ok(Vec::new());
    };
    let relation = JoinedRelation::for_tables(db, &first.tables_referenced())?;
    execute_fused_on_in(db, &relation, cubes, options, arena)
}

/// [`execute_fused_in`] against a pre-materialized joined relation. As
/// with [`CubeQuery::execute_on_in`], the caller must pass a relation
/// joined for the members' table scope; member scope *mutual* equality is
/// enforced here (a mixed-scope member set would silently index the wrong
/// table's rows).
pub fn execute_fused_on_in(
    db: &Database,
    relation: &JoinedRelation,
    cubes: &[&CubeQuery],
    options: &CubeOptions,
    arena: Option<&GridArena>,
) -> Result<Vec<CubeResult>> {
    execute_members_on_in(db, relation, cubes, options, arena)
}

/// Validate a fused member set: each member individually, plus mutual
/// table-scope equality (a mixed-scope member set would silently index the
/// wrong table's rows). Shared by the in-process fused path and the
/// scheduler's partition fan-out, which must agree on eligibility.
pub(crate) fn validate_fused(cubes: &[&CubeQuery]) -> Result<()> {
    let Some(first) = cubes.first() else {
        return Ok(());
    };
    let scope = first.tables_referenced();
    for cube in cubes {
        cube.validate()?;
        if cube.tables_referenced() != scope {
            return Err(RelationalError::InvalidQuery(format!(
                "fused cubes must share one table scope: {:?} vs {:?}",
                scope,
                cube.tables_referenced()
            )));
        }
    }
    Ok(())
}

/// Partition accounting of one scan — identical for every member of a pass
/// (the shape is a pure function of row count and span; only the
/// parallelism gauge reflects scheduling).
#[derive(Debug, Clone, Copy, Default)]
struct PartitionMeta {
    partitions_scanned: u64,
    partition_merges: u64,
    partition_parallelism: u32,
}

impl PartitionMeta {
    /// Accounting for a scan over `partitions` fixed partitions executed
    /// by `workers` distinct workers. Single-partition scans are the
    /// degenerate monolithic case and report all-zero.
    fn new(partitions: usize, workers: u32) -> PartitionMeta {
        if partitions <= 1 {
            return PartitionMeta::default();
        }
        PartitionMeta {
            partitions_scanned: partitions as u64,
            partition_merges: (partitions - 1) as u64,
            partition_parallelism: workers,
        }
    }
}

/// One partition's scan output inside a partition-parallel fused pass:
/// every member's partition-local grid plus its block counters. Owns no
/// borrows, so the scheduler can hand finished partitions between workers.
pub(crate) struct PartitionGrids {
    grids: Vec<MemberGrid>,
    tallies: Vec<BlockTally>,
}

/// Fresh (arena-pooled) grids for one partition of a fused member set.
fn new_member_grids(
    cubes: &[&CubeQuery],
    plans: &[ScanPlan<'_>],
    arena: Option<&GridArena>,
) -> Vec<MemberGrid> {
    cubes
        .iter()
        .zip(plans)
        .map(|(cube, plan)| match plan.cells {
            Some(cells) => MemberGrid::Dense(DenseGrid::new_in(cells, &cube.aggregates, arena)),
            None => MemberGrid::Hashed(HashedGrid::new()),
        })
        .collect()
}

/// Scan one partition of a fused member set into fresh grids.
fn scan_partition(
    cubes: &[&CubeQuery],
    plans: &[ScanPlan<'_>],
    arena: Option<&GridArena>,
    range: std::ops::Range<usize>,
) -> PartitionGrids {
    let mut grids = new_member_grids(cubes, plans, arena);
    let mut tallies = vec![BlockTally::default(); cubes.len()];
    scan_members(range, cubes, plans, &mut grids, &mut tallies);
    PartitionGrids { grids, tallies }
}

/// Is `f`'s accumulator patchable — i.e. is folding appended rows onto a
/// checkpointed prefix the exact fold a cold scan performs? `CountDistinct`
/// and `Median` hold set/list state whose "patch" would be a full merge
/// anyway; they recompute at each watermark instead. The scheduler bundles
/// missing aggregates by this class so one recompute-class member cannot
/// poison a whole bundle's checkpoint eligibility.
pub fn patchable_function(f: AggFunction) -> bool {
    matches!(
        f,
        AggFunction::Count
            | AggFunction::Sum
            | AggFunction::Avg
            | AggFunction::Min
            | AggFunction::Max
    )
}

/// Aggregate sets eligible for [`ScanCheckpoint`] capture: every member
/// must be [`patchable_function`]-class.
fn patchable_aggregates(aggregates: &[(AggFunction, AggColumn)]) -> bool {
    aggregates.iter().all(|&(f, _)| patchable_function(f))
}

/// The span-aligned checkpoint boundary of an `n_rows` scan: the largest
/// multiple of the partition span ≤ `n_rows`. Partitions below it are
/// row-for-row stable under appends; the (possibly partial) tail above it
/// is rescanned by a patch. 0 disables checkpointing (span 0, or the whole
/// relation is inside the first span).
fn checkpoint_boundary(n_rows: usize, partition_blocks: usize) -> usize {
    let span = partition_blocks.saturating_mul(crate::block::BLOCK_ROWS);
    n_rows.checked_div(span).map_or(0, |spans| spans * span)
}

/// Clone every patchable member's fold state at the checkpoint boundary.
fn capture_member_checkpoints(
    cubes: &[&CubeQuery],
    base: &PartitionGrids,
    captured: &mut [Option<MemberGrid>],
) {
    for ((cube, grid), slot) in cubes.iter().zip(&base.grids).zip(captured.iter_mut()) {
        if patchable_aggregates(&cube.aggregates) {
            *slot = Some(grid.clone());
        }
    }
}

/// Fold one partition's grids into the base grids. The caller iterates
/// partitions in **ascending partition order** — that left-fold is the
/// determinism contract's merge order, shared by every execution path.
fn merge_partition(base: &mut PartitionGrids, part: PartitionGrids, arena: Option<&GridArena>) {
    for ((bg, bt), (pg, pt)) in base
        .grids
        .iter_mut()
        .zip(base.tallies.iter_mut())
        .zip(part.grids.into_iter().zip(part.tallies))
    {
        match (bg, pg) {
            (MemberGrid::Dense(a), MemberGrid::Dense(mut b)) => {
                a.merge(&mut b);
                if let Some(arena) = arena {
                    b.recycle_into(arena);
                }
            }
            (MemberGrid::Hashed(a), MemberGrid::Hashed(b)) => a.merge(b),
            _ => unreachable!("partitions share the dense/hashed decision"),
        }
        bt.blocks_scanned += pt.blocks_scanned;
        bt.blocks_skipped += pt.blocks_skipped;
        bt.bytes_scanned += pt.bytes_scanned;
    }
}

/// The one execution engine behind solo, fused, and partition-parallel
/// scans: split the relation into fixed partitions
/// ([`crate::block::partition_ranges`]), scan each into partition-local
/// grids, and fold the partition grids in ascending partition order.
/// `options.threads > 1` scans partitions on scoped workers (stealing from
/// an atomic partition cursor); the fold is ascending regardless, so the
/// result is bit-identical to the sequential scan of the same span.
fn execute_members_on_in(
    db: &Database,
    relation: &JoinedRelation,
    cubes: &[&CubeQuery],
    options: &CubeOptions,
    arena: Option<&GridArena>,
) -> Result<Vec<CubeResult>> {
    if cubes.is_empty() {
        return Ok(Vec::new());
    }
    validate_fused(cubes)?;
    let n_rows = relation.len();
    let plans: Vec<ScanPlan<'_>> = cubes
        .iter()
        .map(|cube| cube.scan_plan(db, relation, options.dense_cell_cap))
        .collect();
    let ranges = crate::block::partition_ranges(n_rows, options.partition_blocks);
    let partitions = ranges.len();

    // Parallelize only when every worker gets a meaningful partition, and
    // never oversubscribe the machine: extra workers on a saturated CPU
    // only add spawn and merge overhead. Worker count affects *who* scans
    // a partition, never the partition shape or the merge order.
    let hardware = if options.clamp_to_hardware {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        usize::MAX
    };
    let threads = options
        .threads
        .max(1)
        .min(hardware)
        .min((n_rows / options.parallel_row_threshold.max(1)).max(1))
        .min(partitions);

    // Checkpoint capture: clone each patchable member's fold state the
    // moment the fold crosses the span-aligned boundary, so a future probe
    // at a newer watermark can resume from there instead of rescanning.
    // Identity relations only — join outputs are not prefix-stable under
    // appends (a new probe-side row splices tuples into existing output).
    let boundary = checkpoint_boundary(n_rows, options.partition_blocks);
    let capture = options.capture_checkpoints && relation.is_identity() && boundary > 0;
    let mut captured: Vec<Option<MemberGrid>> = (0..cubes.len()).map(|_| None).collect();

    let base = if threads <= 1 {
        let mut iter = ranges.into_iter();
        let first = iter.next().expect("≥1 partition");
        let mut folded = first.end;
        let mut base = scan_partition(cubes, &plans, arena, first);
        if capture && folded == boundary {
            capture_member_checkpoints(cubes, &base, &mut captured);
        }
        for range in iter {
            folded = range.end;
            let part = scan_partition(cubes, &plans, arena, range);
            merge_partition(&mut base, part, arena);
            if capture && folded == boundary {
                capture_member_checkpoints(cubes, &base, &mut captured);
            }
        }
        base
    } else {
        // Workers steal partitions from an atomic cursor; finished
        // partitions land in index-addressed slots so the fold below runs
        // in ascending partition order no matter who finished what when.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let collected: Vec<Vec<(usize, PartitionGrids)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let (next, ranges, plans) = (&next, &ranges, &plans);
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(range) = ranges.get(idx) else {
                                return done;
                            };
                            done.push((idx, scan_partition(cubes, plans, arena, range.clone())));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("cube scan worker"))
                .collect()
        });
        let mut slots: Vec<Option<PartitionGrids>> = (0..partitions).map(|_| None).collect();
        for (idx, part) in collected.into_iter().flatten() {
            slots[idx] = Some(part);
        }
        let mut slot_iter = slots.into_iter().enumerate();
        let (_, first) = slot_iter.next().expect("≥1 partition");
        let mut base = first.expect("partition 0 was scanned");
        if capture && ranges[0].end == boundary {
            capture_member_checkpoints(cubes, &base, &mut captured);
        }
        for (idx, part) in slot_iter {
            merge_partition(&mut base, part.expect("every partition scanned"), arena);
            if capture && ranges[idx].end == boundary {
                capture_member_checkpoints(cubes, &base, &mut captured);
            }
        }
        base
    };

    let meta = PartitionMeta::new(partitions, threads as u32);
    let PartitionGrids { grids, tallies } = base;
    Ok(cubes
        .iter()
        .zip(&plans)
        .zip(grids)
        .zip(tallies)
        .zip(captured)
        .map(|((((cube, plan), grid), tally), captured)| {
            let mut result =
                cube.finish_scan(grid, plan, n_rows, threads as u32, tally, meta, arena);
            if let Some(grid) = captured {
                result.checkpoint = Some(std::sync::Arc::new(ScanCheckpoint {
                    cube: (*cube).clone(),
                    rows: boundary,
                    partition_blocks: options.partition_blocks,
                    dense_cell_cap: options.dense_cell_cap,
                    grid,
                }));
            }
            result
        })
        .collect())
}

/// Scan one partition of a fused member set for the scheduler's
/// partition-parallel path: plans are rebuilt locally (they borrow `db`,
/// so they cannot travel with the queued job), the grids come back owned.
/// The members must already be validated ([`validate_fused`]) and `range`
/// must be one of [`crate::block::partition_ranges`]' block-aligned ranges.
pub(crate) fn scan_fused_partition(
    db: &Database,
    relation: &JoinedRelation,
    cubes: &[&CubeQuery],
    options: &CubeOptions,
    arena: Option<&GridArena>,
    range: std::ops::Range<usize>,
) -> PartitionGrids {
    let plans: Vec<ScanPlan<'_>> = cubes
        .iter()
        .map(|cube| cube.scan_plan(db, relation, options.dense_cell_cap))
        .collect();
    scan_partition(cubes, &plans, arena, range)
}

/// Merge the scheduler's finished partitions — `parts` MUST be in
/// ascending partition order — and finish every member.
/// `partition_parallelism` is the number of distinct workers that executed
/// the partitions (a gauge; it never affects results).
pub(crate) fn merge_fused_partitions(
    db: &Database,
    relation: &JoinedRelation,
    cubes: &[&CubeQuery],
    options: &CubeOptions,
    arena: Option<&GridArena>,
    parts: Vec<PartitionGrids>,
    partition_parallelism: u32,
) -> Vec<CubeResult> {
    let n_rows = relation.len();
    let plans: Vec<ScanPlan<'_>> = cubes
        .iter()
        .map(|cube| cube.scan_plan(db, relation, options.dense_cell_cap))
        .collect();
    let partitions = parts.len();
    let ranges = crate::block::partition_ranges(n_rows, options.partition_blocks);
    debug_assert_eq!(ranges.len(), partitions, "parts must cover the relation");
    let boundary = checkpoint_boundary(n_rows, options.partition_blocks);
    let capture = options.capture_checkpoints && relation.is_identity() && boundary > 0;
    let mut captured: Vec<Option<MemberGrid>> = (0..cubes.len()).map(|_| None).collect();
    let mut iter = parts.into_iter().enumerate();
    let (_, mut base) = iter.next().expect("≥1 partition");
    if capture && ranges[0].end == boundary {
        capture_member_checkpoints(cubes, &base, &mut captured);
    }
    for (idx, part) in iter {
        merge_partition(&mut base, part, arena);
        if capture && ranges[idx].end == boundary {
            capture_member_checkpoints(cubes, &base, &mut captured);
        }
    }
    let meta = PartitionMeta::new(partitions, partition_parallelism);
    let PartitionGrids { grids, tallies } = base;
    cubes
        .iter()
        .zip(&plans)
        .zip(grids)
        .zip(tallies)
        .zip(captured)
        .map(|((((cube, plan), grid), tally), captured)| {
            let mut result = cube.finish_scan(grid, plan, n_rows, 1, tally, meta, arena);
            if let Some(grid) = captured {
                result.checkpoint = Some(std::sync::Arc::new(ScanCheckpoint {
                    cube: (*cube).clone(),
                    rows: boundary,
                    partition_blocks: options.partition_blocks,
                    dense_cell_cap: options.dense_cell_cap,
                    grid,
                }));
            }
            result
        })
        .collect()
}

/// Re-execute a checkpointed scan at the database's **current** watermark
/// by scanning only the delta: clone the checkpoint's grid (the fold of
/// every partition below [`ScanCheckpoint::rows`]), scan the partitions
/// covering `checkpoint.rows..visible` fresh, and fold them in ascending
/// order. Because the fold resumes exactly where a cold scan would stand
/// after its stable prefix, the patched result is bit-identical to a cold
/// full scan at the same watermark — down to the last f64 ulp.
///
/// Stats describe the **patch work**: `rows_scanned` (and the
/// `delta_rows_scanned` twin) count only the rescanned tail, block
/// tallies only the delta's blocks, and `grids_patched` reads 1;
/// [`CubeResult::visible_rows`] still stamps the full watermark. Falls
/// back to a cold scan when the checkpoint no longer applies (shrunken
/// relation, non-identity scope, or changed scan shape).
pub fn execute_patch_in(
    db: &Database,
    checkpoint: &ScanCheckpoint,
    options: &CubeOptions,
    arena: Option<&GridArena>,
) -> Result<CubeResult> {
    let mut results = execute_patches_in(db, &[checkpoint], options, arena)?;
    Ok(results.pop().expect("one member"))
}

/// [`execute_patch_in`] for several checkpoints sharing one table scope
/// and one prefix shape (`ScanCheckpoint::fuse_identity`): the appended
/// tail is scanned **once**, each row folded into every member's cloned
/// prefix grid — the delta analogue of [`execute_fused_in`]. Without this,
/// a wave whose N stale grids all resume from the same boundary would pay
/// N tail scans for what is physically one.
///
/// Each member's result carries the single-patch stats (`grids_patched` =
/// 1, `rows_scanned`/`delta_rows_scanned` = the shared tail) exactly as if
/// patched solo; the wave layer charges tail rows once per pass, the same
/// convention fused cold passes use. Falls back to one fused cold pass
/// when the checkpoints no longer apply (shrunken relation, non-identity
/// scope, or changed scan shape).
pub fn execute_patches_in(
    db: &Database,
    checkpoints: &[&ScanCheckpoint],
    options: &CubeOptions,
    arena: Option<&GridArena>,
) -> Result<Vec<CubeResult>> {
    let Some(first) = checkpoints.first() else {
        return Ok(Vec::new());
    };
    debug_assert!(
        checkpoints
            .iter()
            .all(|cp| cp.fuse_identity() == first.fuse_identity()),
        "fused patches must share one prefix shape"
    );
    let cubes: Vec<&CubeQuery> = checkpoints.iter().map(|cp| &cp.cube).collect();
    let relation = JoinedRelation::for_tables(db, &cubes[0].tables_referenced())?;
    let n_rows = relation.len();
    if !relation.is_identity() || n_rows < first.rows || !first.compatible(options) {
        return execute_fused_on_in(db, &relation, &cubes, options, arena);
    }
    let plans: Vec<ScanPlan<'_>> = cubes
        .iter()
        .map(|cube| cube.scan_plan(db, &relation, first.dense_cell_cap))
        .collect();
    let ranges = crate::block::partition_ranges(n_rows, first.partition_blocks);
    let boundary = checkpoint_boundary(n_rows, first.partition_blocks);
    let mut base = PartitionGrids {
        grids: checkpoints.iter().map(|cp| cp.grid.clone()).collect(),
        tallies: vec![BlockTally::default(); checkpoints.len()],
    };
    // The boundary may not have moved (append within the same span): the
    // refreshed checkpoints are then the old ones, captured before any
    // merge.
    let mut captured: Vec<Option<MemberGrid>> = (0..cubes.len()).map(|_| None).collect();
    if boundary == first.rows {
        capture_member_checkpoints(&cubes, &base, &mut captured);
    }
    let mut delta_rows = 0u64;
    let mut delta_partitions = 0usize;
    for range in ranges.iter().filter(|r| r.end > first.rows) {
        debug_assert!(range.start >= first.rows, "delta is span-aligned");
        delta_rows += (range.end - range.start) as u64;
        delta_partitions += 1;
        let part = scan_partition(&cubes, &plans, arena, range.clone());
        merge_partition(&mut base, part, arena);
        if range.end == boundary {
            capture_member_checkpoints(&cubes, &base, &mut captured);
        }
    }
    let meta = PartitionMeta::new(delta_partitions, 1);
    let PartitionGrids { grids, tallies } = base;
    Ok(cubes
        .iter()
        .zip(&plans)
        .zip(grids)
        .zip(tallies)
        .zip(captured)
        .map(|((((cube, plan), grid), tally), captured)| {
            let mut result =
                cube.finish_scan(grid, plan, delta_rows as usize, 1, tally, meta, arena);
            result.visible_rows = n_rows as u64;
            result.stats.grids_patched = 1;
            result.stats.delta_rows_scanned = delta_rows;
            if let Some(grid) = captured {
                result.checkpoint = Some(std::sync::Arc::new(ScanCheckpoint {
                    cube: (*cube).clone(),
                    rows: boundary,
                    partition_blocks: first.partition_blocks,
                    dense_cell_cap: first.dense_cell_cap,
                    grid,
                }));
            }
            result
        })
        .collect())
}

/// The sequential scan driver shared by solo executions (`threads <= 1`)
/// and fused multi-cube passes: one pass over `0..n_rows` in
/// [`SCAN_BLOCK`]-row chunks, each chunk folded into every member's grid
/// in member order before moving on (touched cells of all grids stay hot
/// while the chunk's column values are still in cache).
///
/// One chunk is exactly one storage block, so dense members with an
/// [`EncodedMember`] plan scan the compressed block —
/// [`DenseGrid::scan_block_encoded`] consults its zone maps and either
/// bulk-applies, splats, or decodes it — while everything else takes the
/// plain [`DenseGrid::scan_block`] / [`HashedGrid::scan`] path. Because
/// solo and fused scans share this driver, a member's per-block decisions
/// (and therefore its [`CubeStats`] block counters) are identical in both,
/// which the fused≡solo stats equality tests pin.
fn scan_members(
    rows: std::ops::Range<usize>,
    cubes: &[&CubeQuery],
    plans: &[ScanPlan<'_>],
    grids: &mut [MemberGrid],
    tallies: &mut [BlockTally],
) {
    // Partition boundaries are block-aligned (`partition_ranges`), so a
    // partition's first row always starts a storage block and the encoded
    // path's block index stays valid inside any partition.
    debug_assert_eq!(rows.start % SCAN_BLOCK, 0);
    let mut cellbuf = [0u32; SCAN_BLOCK];
    let mut row = rows.start;
    let mut block_idx = rows.start / SCAN_BLOCK;
    while row < rows.end {
        let len = (rows.end - row).min(SCAN_BLOCK);
        for (((cube, plan), grid), tally) in cubes
            .iter()
            .zip(plans)
            .zip(grids.iter_mut())
            .zip(tallies.iter_mut())
        {
            match grid {
                MemberGrid::Dense(g) => match &plan.encoded {
                    Some(enc) => {
                        g.scan_block_encoded(row, len, block_idx, plan, enc, &mut cellbuf, tally)
                    }
                    None => g.scan_block(
                        row,
                        len,
                        &plan.codecs,
                        &plan.strides,
                        &plan.agg_ctx,
                        &mut cellbuf,
                    ),
                },
                MemberGrid::Hashed(g) => g.scan(
                    row..row + len,
                    &plan.codecs,
                    &cube.aggregates,
                    &plan.agg_ctx,
                ),
            }
        }
        row += len;
        block_idx += 1;
    }
}

/// Roll the finest-level groups up into every dimension subset,
/// dimension-at-a-time: after processing dimension `i`, the arena holds all
/// groups whose first `i + 1` dimensions are either specific or ALL. Each
/// group is merged into at most `d` coarser targets, and a target is
/// allocated exactly once — O(d · groups) merges, no clones of intermediate
/// accumulator vectors.
///
/// Keys from different subsets cannot collide because rolled-up dimensions
/// read ALL.
fn rollup(
    finest: Vec<(GroupKey, Vec<Accumulator>)>,
    d: usize,
) -> (Vec<GroupKey>, Vec<Vec<Accumulator>>) {
    let mut keys: Vec<GroupKey> = Vec::with_capacity(finest.len());
    let mut arena: Vec<Vec<Accumulator>> = Vec::with_capacity(finest.len());
    let mut index: FxHashMap<GroupKey, u32> = FxHashMap::default();
    for (key, accs) in finest {
        index.insert(key, arena.len() as u32);
        keys.push(key);
        arena.push(accs);
    }
    for dim in 0..d {
        // Groups appended during this pass already read ALL at `dim`, so
        // iterating the pre-pass length is exhaustive.
        for idx in 0..arena.len() {
            let key = keys[idx];
            if key.code(dim) == ALL {
                continue;
            }
            let target = key.rolled_up(dim);
            match index.entry(target) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let tgt = *e.get() as usize;
                    debug_assert_ne!(tgt, idx);
                    let src = std::mem::take(&mut arena[idx]);
                    for (a, b) in arena[tgt].iter_mut().zip(&src) {
                        a.merge(b);
                    }
                    arena[idx] = src;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(arena.len() as u32);
                    keys.push(target);
                    let clone = arena[idx].clone();
                    arena.push(clone);
                }
            }
        }
    }
    (keys, arena)
}

impl CubeResult {
    pub fn dims(&self) -> &[ColumnRef] {
        &self.dims
    }

    pub fn relevant(&self) -> &[Vec<Value>] {
        &self.relevant
    }

    pub fn aggregate_count(&self) -> usize {
        self.n_aggs
    }

    /// The literal index of `value` in dimension `dim`'s relevant list.
    pub fn literal_index(&self, dim: usize, value: &Value) -> Option<usize> {
        self.relevant[dim].iter().position(|v| v == value)
    }

    /// Look up the aggregate `agg_idx` for the group selected by
    /// `assignment` (one selector per dimension).
    ///
    /// Returns `None` when the group is empty (no row matched) **and** the
    /// aggregate is NULL-on-empty; for `Count`-like aggregates an absent
    /// group reads as `Some(0.0)` only via [`CubeResult::get_count`].
    pub fn get(&self, assignment: &[DimSel], agg_idx: usize) -> Option<f64> {
        let key = self.assignment_key(assignment)?;
        self.groups.get(&key).and_then(|vals| vals[agg_idx])
    }

    /// Like [`CubeResult::get`] for count aggregates: an absent group means
    /// zero matching rows, so the count is 0.
    pub fn get_count(&self, assignment: &[DimSel], agg_idx: usize) -> f64 {
        match self.assignment_key(assignment) {
            Some(key) => self
                .groups
                .get(&key)
                .and_then(|vals| vals[agg_idx])
                .unwrap_or(0.0),
            None => 0.0,
        }
    }

    fn assignment_key(&self, assignment: &[DimSel]) -> Option<GroupKey> {
        debug_assert_eq!(assignment.len(), self.dims.len());
        let mut codes = Vec::with_capacity(assignment.len());
        for (i, sel) in assignment.iter().enumerate() {
            match sel {
                DimSel::Any => codes.push(ALL),
                DimSel::Literal(idx) => {
                    if *idx >= self.relevant[i].len() {
                        return None;
                    }
                    codes.push(*idx as u8);
                }
            }
        }
        Some(GroupKey::from_codes(&codes))
    }

    /// Total number of materialized groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Visible rows of the scanned relation when this result was computed
    /// — the watermark stamp delta-aware caching matches on.
    pub fn visible_rows(&self) -> u64 {
        self.visible_rows
    }

    /// The resumable scan prefix captured by this execution, if any.
    pub fn checkpoint(&self) -> Option<&std::sync::Arc<ScanCheckpoint>> {
        self.checkpoint.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_query;
    use crate::query::{Predicate, SimpleAggregateQuery};
    use crate::table::Table;

    /// Figure 2's data set, as in the exec tests.
    fn nfl() -> Database {
        let t = Table::from_columns(
            "nflsuspensions",
            vec![
                (
                    "games",
                    vec![
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "10".into(),
                        "4".into(),
                    ],
                ),
                (
                    "category",
                    vec![
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "gambling".into(),
                        "peds".into(),
                        "personal conduct".into(),
                    ],
                ),
                (
                    "year",
                    vec![
                        Value::Int(1989),
                        Value::Int(1995),
                        Value::Int(2014),
                        Value::Int(1983),
                        Value::Int(2014),
                        Value::Int(2014),
                    ],
                ),
            ],
        )
        .unwrap();
        let mut db = Database::new("nfl");
        db.add_table(t);
        db
    }

    fn nfl_cube_query(db: &Database) -> CubeQuery {
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let cat = db.resolve("nflsuspensions", "category").unwrap();
        let year = db.resolve("nflsuspensions", "year").unwrap();
        CubeQuery {
            dims: vec![games, cat],
            relevant: vec![
                vec!["indef".into()],
                vec![
                    "gambling".into(),
                    "substance abuse, repeated offense".into(),
                ],
            ],
            aggregates: vec![
                (AggFunction::Count, AggColumn::Star),
                (AggFunction::Sum, AggColumn::Column(year)),
                (AggFunction::Avg, AggColumn::Column(year)),
            ],
        }
    }

    fn nfl_cube(db: &Database) -> CubeResult {
        nfl_cube_query(db).execute(db).unwrap()
    }

    /// Every tuning variant that must agree with the default path.
    fn option_variants() -> Vec<(&'static str, CubeOptions)> {
        vec![
            ("dense-1t", CubeOptions::default()),
            (
                "hashed-1t",
                CubeOptions {
                    dense_cell_cap: 0,
                    ..CubeOptions::default()
                },
            ),
            (
                "dense-4t",
                CubeOptions {
                    threads: 4,
                    parallel_row_threshold: 1,
                    clamp_to_hardware: false,
                    ..CubeOptions::default()
                },
            ),
            (
                "hashed-4t",
                CubeOptions {
                    dense_cell_cap: 0,
                    threads: 4,
                    parallel_row_threshold: 1,
                    clamp_to_hardware: false,
                    ..CubeOptions::default()
                },
            ),
            (
                "dense-1p",
                CubeOptions {
                    partition_blocks: 1,
                    ..CubeOptions::default()
                },
            ),
            (
                "dense-4t-1p",
                CubeOptions {
                    threads: 4,
                    parallel_row_threshold: 1,
                    clamp_to_hardware: false,
                    partition_blocks: 1,
                    ..CubeOptions::default()
                },
            ),
        ]
    }

    #[test]
    fn cube_reproduces_paper_counts() {
        let db = nfl();
        let r = nfl_cube(&db);
        // Four lifetime bans (games = indef, any category).
        assert_eq!(r.get_count(&[DimSel::Literal(0), DimSel::Any], 0), 4.0);
        // Three for repeated substance abuse.
        assert_eq!(
            r.get_count(&[DimSel::Literal(0), DimSel::Literal(1)], 0),
            3.0
        );
        // One for gambling.
        assert_eq!(
            r.get_count(&[DimSel::Literal(0), DimSel::Literal(0)], 0),
            1.0
        );
        // Grand total.
        assert_eq!(r.get_count(&[DimSel::Any, DimSel::Any], 0), 6.0);
    }

    #[test]
    fn cube_matches_naive_executor_on_every_combination() {
        let db = nfl();
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let cat = db.resolve("nflsuspensions", "category").unwrap();
        let year = db.resolve("nflsuspensions", "year").unwrap();
        let game_lits = [Some("indef"), None];
        let cat_lits = [
            Some("gambling"),
            Some("substance abuse, repeated offense"),
            None,
        ];
        for (name, options) in option_variants() {
            let r = nfl_cube_query(&db).execute_with(&db, &options).unwrap();
            for (gi, g) in game_lits.iter().enumerate() {
                for (ci, c) in cat_lits.iter().enumerate() {
                    let mut preds = Vec::new();
                    let mut assignment = Vec::new();
                    match g {
                        Some(lit) => {
                            preds.push(Predicate::new(games, *lit));
                            assignment.push(DimSel::Literal(gi));
                        }
                        None => assignment.push(DimSel::Any),
                    }
                    match c {
                        Some(lit) => {
                            preds.push(Predicate::new(cat, *lit));
                            assignment.push(DimSel::Literal(ci));
                        }
                        None => assignment.push(DimSel::Any),
                    }
                    for (agg_idx, (f, col)) in [
                        (AggFunction::Count, AggColumn::Star),
                        (AggFunction::Sum, AggColumn::Column(year)),
                        (AggFunction::Avg, AggColumn::Column(year)),
                    ]
                    .iter()
                    .enumerate()
                    {
                        let q = SimpleAggregateQuery::new(*f, *col, preds.clone());
                        let naive = execute_query(&db, &q).unwrap();
                        if *f == AggFunction::Count {
                            assert_eq!(
                                Some(r.get_count(&assignment, agg_idx)),
                                naive,
                                "[{name}] {}",
                                q.to_sql(&db)
                            );
                        } else {
                            assert_eq!(
                                r.get(&assignment, agg_idx),
                                naive,
                                "[{name}] {}",
                                q.to_sql(&db)
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn grid_mode_follows_decision_rule() {
        let db = nfl();
        let q = nfl_cube_query(&db);
        let dense = q.execute(&db).unwrap();
        assert_eq!(dense.stats.grid_mode, GridMode::Dense);
        // radices: (1 literal + OTHER) × (2 literals + OTHER) = 6 cells.
        assert_eq!(dense.stats.dense_cells, 6);
        assert_eq!(dense.stats.scan_threads, 1);

        let hashed = q
            .execute_with(
                &db,
                &CubeOptions {
                    dense_cell_cap: 5,
                    ..CubeOptions::default()
                },
            )
            .unwrap();
        assert_eq!(hashed.stats.grid_mode, GridMode::Hashed);
        assert_eq!(hashed.stats.dense_cells, 0);
        assert_eq!(hashed.stats.total_groups, dense.stats.total_groups);
    }

    #[test]
    fn small_relations_stay_sequential() {
        let db = nfl();
        let r = nfl_cube_query(&db)
            .execute_with(&db, &CubeOptions::with_threads(8))
            .unwrap();
        // 6 rows is far below the parallel threshold.
        assert_eq!(r.stats.scan_threads, 1);
    }

    #[test]
    fn count_distinct_survives_rollup() {
        let db = nfl();
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let year = db.resolve("nflsuspensions", "year").unwrap();
        for (name, options) in option_variants() {
            let r = CubeQuery {
                dims: vec![games],
                relevant: vec![vec!["indef".into()]],
                aggregates: vec![(AggFunction::CountDistinct, AggColumn::Column(year))],
            }
            .execute_with(&db, &options)
            .unwrap();
            // indef years: 1989, 1995, 2014, 1983 → 4 distinct.
            assert_eq!(r.get(&[DimSel::Literal(0)], 0), Some(4.0), "[{name}]");
            // All years: 1989, 1995, 2014, 1983, 2014, 2014 → 4 distinct,
            // not 6: the rollup must merge distinct sets, not add counts.
            assert_eq!(r.get(&[DimSel::Any], 0), Some(4.0), "[{name}]");
        }
    }

    #[test]
    fn irrelevant_literals_collapse_to_other() {
        let db = nfl();
        let r = nfl_cube(&db);
        // Finest level: games ∈ {indef, OTHER} × category ∈ {gambling,
        // substance, OTHER} — at most 6 finest groups even if the raw
        // columns had thousands of values.
        assert!(r.stats.finest_groups <= 6, "{:?}", r.stats);
    }

    #[test]
    fn missing_literal_reads_as_empty_group() {
        let db = nfl();
        let games = db.resolve("nflsuspensions", "games").unwrap();
        for (name, options) in option_variants() {
            let r = CubeQuery {
                dims: vec![games],
                relevant: vec![vec!["indef".into(), "not-in-data".into()]],
                aggregates: vec![(AggFunction::Count, AggColumn::Star)],
            }
            .execute_with(&db, &options)
            .unwrap();
            assert_eq!(r.get_count(&[DimSel::Literal(1)], 0), 0.0, "[{name}]");
            assert_eq!(r.get(&[DimSel::Literal(1)], 0), None, "[{name}]");
            // Out-of-range literal index is not a panic either.
            assert_eq!(r.get_count(&[DimSel::Literal(9)], 0), 0.0, "[{name}]");
        }
    }

    #[test]
    fn zero_dimension_cube_is_global_aggregate() {
        let db = nfl();
        let year = db.resolve("nflsuspensions", "year").unwrap();
        for (name, options) in option_variants() {
            let r = CubeQuery {
                dims: vec![],
                relevant: vec![],
                aggregates: vec![(AggFunction::Max, AggColumn::Column(year))],
            }
            .execute_with(&db, &options)
            .unwrap();
            assert_eq!(r.get(&[], 0), Some(2014.0), "[{name}]");
            assert_eq!(r.group_count(), 1, "[{name}]");
        }
    }

    #[test]
    fn empty_relation_yields_no_groups() {
        let t = Table::from_columns("empty", vec![("x", Vec::<Value>::new())]).unwrap();
        let mut db = Database::new("e");
        db.add_table(t);
        let x = db.resolve("empty", "x").unwrap();
        for (name, options) in option_variants() {
            let r = CubeQuery {
                dims: vec![x],
                relevant: vec![vec![Value::Int(1)]],
                aggregates: vec![(AggFunction::Count, AggColumn::Star)],
            }
            .execute_with(&db, &options)
            .unwrap();
            assert_eq!(r.group_count(), 0, "[{name}]");
            assert_eq!(r.get_count(&[DimSel::Any], 0), 0.0, "[{name}]");
            assert_eq!(r.get(&[DimSel::Any], 0), None, "[{name}]");
        }
    }

    #[test]
    fn ratio_aggregates_rejected() {
        let db = nfl();
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let q = CubeQuery {
            dims: vec![games],
            relevant: vec![vec!["indef".into()]],
            aggregates: vec![(AggFunction::Percentage, AggColumn::Star)],
        };
        assert!(q.execute(&db).is_err());
    }

    #[test]
    fn too_many_dimensions_rejected() {
        let db = nfl();
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let q = CubeQuery {
            dims: vec![games; 9],
            relevant: vec![vec![]; 9],
            aggregates: vec![(AggFunction::Count, AggColumn::Star)],
        };
        assert!(q.execute(&db).is_err());
    }

    #[test]
    fn numeric_dimension_grouping() {
        let db = nfl();
        let year = db.resolve("nflsuspensions", "year").unwrap();
        for (name, options) in option_variants() {
            let r = CubeQuery {
                dims: vec![year],
                relevant: vec![vec![Value::Int(2014)]],
                aggregates: vec![(AggFunction::Count, AggColumn::Star)],
            }
            .execute_with(&db, &options)
            .unwrap();
            assert_eq!(r.get_count(&[DimSel::Literal(0)], 0), 3.0, "[{name}]");
        }
    }

    #[test]
    fn arena_reuses_buffers_across_executions() {
        let db = nfl();
        let q = nfl_cube_query(&db);
        let arena = GridArena::new();
        let plain = q.execute(&db).unwrap();
        let first = q
            .execute_in(&db, &CubeOptions::default(), Some(&arena))
            .unwrap();
        let after_first = arena.stats();
        // Count + touched go through the pool; Sum/Avg add floats+counts.
        assert!(after_first.allocations > 0);
        assert_eq!(after_first.reuses, 0);
        let second = q
            .execute_in(&db, &CubeOptions::default(), Some(&arena))
            .unwrap();
        let after_second = arena.stats();
        // Every buffer the second run needed came back from the first run.
        assert_eq!(after_second.allocations, after_first.allocations);
        assert_eq!(after_second.reuses, after_first.allocations);
        // Results are identical with and without the arena.
        for r in [&first, &second] {
            for gsel in [DimSel::Literal(0), DimSel::Any] {
                for csel in [DimSel::Literal(0), DimSel::Literal(1), DimSel::Any] {
                    for agg in 0..3 {
                        assert_eq!(
                            r.get(&[gsel, csel], agg),
                            plain.get(&[gsel, csel], agg),
                            "{gsel:?}/{csel:?}/{agg}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn arena_survives_parallel_partitions() {
        let n = 10_000usize;
        let cats: Vec<Value> = (0..n)
            .map(|i| Value::Str(["a", "b", "c"][i % 3].into()))
            .collect();
        let t = Table::from_columns("big", vec![("cat", cats)]).unwrap();
        let mut db = Database::new("big");
        db.add_table(t);
        let cat = db.resolve("big", "cat").unwrap();
        let q = CubeQuery {
            dims: vec![cat],
            relevant: vec![vec!["a".into(), "b".into()]],
            aggregates: vec![(AggFunction::Count, AggColumn::Star)],
        };
        let opts = CubeOptions {
            threads: 4,
            parallel_row_threshold: 1024,
            clamp_to_hardware: false,
            // 10k rows / 2048-row partitions → 5 partitions for 4 workers.
            partition_blocks: 1,
            ..CubeOptions::default()
        };
        let arena = GridArena::new();
        let seq = q.execute(&db).unwrap();
        let r1 = q.execute_in(&db, &opts, Some(&arena)).unwrap();
        assert_eq!(r1.stats.scan_threads, 4);
        assert_eq!(r1.stats.partitions_scanned, 5, "{:?}", r1.stats);
        assert_eq!(r1.stats.partition_merges, 4, "{:?}", r1.stats);
        assert_eq!(r1.stats.partition_parallelism, 4, "{:?}", r1.stats);
        let first_allocs = arena.stats().allocations;
        assert!(first_allocs >= 4, "one grid per partition");
        let r2 = q.execute_in(&db, &opts, Some(&arena)).unwrap();
        // The second execution is served entirely from the pool.
        assert_eq!(arena.stats().allocations, first_allocs);
        assert_eq!(arena.stats().reuses, first_allocs);
        for r in [&r1, &r2] {
            for sel in [DimSel::Any, DimSel::Literal(0), DimSel::Literal(1)] {
                assert_eq!(r.get_count(&[sel], 0), seq.get_count(&[sel], 0), "{sel:?}");
            }
        }
    }

    /// Every member of a fused pass must produce a result bit-identical to
    /// its own solo sequential execution — dense and hashed members alike,
    /// stats included.
    #[test]
    fn fused_scan_matches_solo_execution_per_member() {
        let db = nfl();
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let cat = db.resolve("nflsuspensions", "category").unwrap();
        let year = db.resolve("nflsuspensions", "year").unwrap();
        let cubes = [
            nfl_cube_query(&db),
            CubeQuery {
                dims: vec![games],
                relevant: vec![vec!["indef".into(), "10".into()]],
                aggregates: vec![
                    (AggFunction::Count, AggColumn::Star),
                    (AggFunction::Avg, AggColumn::Column(year)),
                ],
            },
            CubeQuery {
                dims: vec![],
                relevant: vec![],
                aggregates: vec![(AggFunction::Max, AggColumn::Column(year))],
            },
            CubeQuery {
                dims: vec![cat],
                relevant: vec![vec!["gambling".into(), "peds".into()]],
                aggregates: vec![(AggFunction::CountDistinct, AggColumn::Column(year))],
            },
        ];
        // cap 5 sends the 6-cell first cube to the hashed grid while the
        // others stay dense — fusion must handle a mixed member set.
        for cap in [usize::MAX, 5] {
            let options = CubeOptions {
                dense_cell_cap: cap,
                ..CubeOptions::default()
            };
            let refs: Vec<&CubeQuery> = cubes.iter().collect();
            let fused = execute_fused_in(&db, &refs, &options, None).unwrap();
            assert_eq!(fused.len(), cubes.len());
            for (cube, fused_result) in cubes.iter().zip(&fused) {
                let solo = cube.execute_with(&db, &options).unwrap();
                assert_eq!(fused_result.stats, solo.stats, "cap={cap}");
                assert_eq!(fused_result.group_count(), solo.group_count());
                for (key, vals) in &solo.groups {
                    assert_eq!(fused_result.groups.get(key), Some(vals), "cap={cap}");
                }
            }
        }
    }

    #[test]
    fn fused_scan_of_nothing_is_empty() {
        let db = nfl();
        assert!(execute_fused_in(&db, &[], &CubeOptions::default(), None)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn fused_scan_rejects_invalid_members() {
        let db = nfl();
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let good = nfl_cube_query(&db);
        let bad = CubeQuery {
            dims: vec![games],
            relevant: vec![vec!["indef".into()]],
            aggregates: vec![(AggFunction::Percentage, AggColumn::Star)],
        };
        assert!(execute_fused_in(&db, &[&good, &bad], &CubeOptions::default(), None).is_err());
    }

    #[test]
    fn fused_scan_rejects_mixed_table_scopes() {
        let mut db = nfl();
        let other =
            Table::from_columns("other", vec![("x", vec!["a".into(), "b".into()])]).unwrap();
        db.add_table(other);
        let games_cube = CubeQuery {
            dims: vec![db.resolve("nflsuspensions", "games").unwrap()],
            relevant: vec![vec!["indef".into()]],
            aggregates: vec![(AggFunction::Count, AggColumn::Star)],
        };
        let other_cube = CubeQuery {
            dims: vec![db.resolve("other", "x").unwrap()],
            relevant: vec![vec!["a".into()]],
            aggregates: vec![(AggFunction::Count, AggColumn::Star)],
        };
        // A mixed-scope member set must be a clean error, not a silent
        // mis-indexed scan — in release builds there is no debug_assert
        // to catch it.
        let err = execute_fused_in(
            &db,
            &[&games_cube, &other_cube],
            &CubeOptions::default(),
            None,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("table scope"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn fused_scan_draws_grids_from_the_arena() {
        let db = nfl();
        let q1 = nfl_cube_query(&db);
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let q2 = CubeQuery {
            dims: vec![games],
            relevant: vec![vec!["indef".into()]],
            aggregates: vec![(AggFunction::Count, AggColumn::Star)],
        };
        let arena = GridArena::new();
        let first =
            execute_fused_in(&db, &[&q1, &q2], &CubeOptions::default(), Some(&arena)).unwrap();
        let after_first = arena.stats();
        assert!(after_first.allocations > 0);
        let second =
            execute_fused_in(&db, &[&q1, &q2], &CubeOptions::default(), Some(&arena)).unwrap();
        // The second pass is served entirely from the pool.
        assert_eq!(arena.stats().allocations, after_first.allocations);
        assert_eq!(arena.stats().reuses, after_first.allocations);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.groups, b.groups);
        }
    }

    #[test]
    fn parallel_scan_partitions_large_relations() {
        // A relation big enough to clear the parallel threshold.
        let n = 10_000usize;
        let cats: Vec<Value> = (0..n)
            .map(|i| Value::Str(["a", "b", "c"][i % 3].into()))
            .collect();
        let nums: Vec<Value> = (0..n).map(|i| Value::Int((i % 97) as i64)).collect();
        let t = Table::from_columns("big", vec![("cat", cats), ("num", nums)]).unwrap();
        let mut db = Database::new("big");
        db.add_table(t);
        let cat = db.resolve("big", "cat").unwrap();
        let num = db.resolve("big", "num").unwrap();
        let q = CubeQuery {
            dims: vec![cat],
            relevant: vec![vec!["a".into(), "b".into()]],
            aggregates: vec![
                (AggFunction::Count, AggColumn::Star),
                (AggFunction::Sum, AggColumn::Column(num)),
                (AggFunction::CountDistinct, AggColumn::Column(num)),
            ],
        };
        let seq = q.execute(&db).unwrap();
        let par = q
            .execute_with(
                &db,
                &CubeOptions {
                    threads: 4,
                    parallel_row_threshold: 1024,
                    clamp_to_hardware: false,
                    partition_blocks: 1,
                    ..CubeOptions::default()
                },
            )
            .unwrap();
        assert_eq!(par.stats.scan_threads, 4, "{:?}", par.stats);
        for sel in [DimSel::Any, DimSel::Literal(0), DimSel::Literal(1)] {
            for agg in 0..3 {
                assert_eq!(seq.get(&[sel], agg), par.get(&[sel], agg), "{sel:?}/{agg}");
            }
        }
    }

    /// The determinism contract itself: the same fixed partition shape and
    /// ascending merge order run everywhere, so a parallel partitioned
    /// scan is **bit-identical** (groups and accumulators, not just
    /// approximately equal) to the sequential scan of the same partitions
    /// — and a single-partition scan of f64 data only *happens* to match
    /// here because the corpus sums are integer-exact in f64.
    #[test]
    fn partitioned_scans_are_bit_identical_across_threads() {
        let n = 10_000usize;
        let cats: Vec<Value> = (0..n)
            .map(|i| Value::Str(["a", "b", "c"][i % 3].into()))
            .collect();
        let nums: Vec<Value> = (0..n).map(|i| Value::Int((i % 97) as i64)).collect();
        let t = Table::from_columns("big", vec![("cat", cats), ("num", nums)]).unwrap();
        let mut db = Database::new("big");
        db.add_table(t);
        let cat = db.resolve("big", "cat").unwrap();
        let num = db.resolve("big", "num").unwrap();
        let q = CubeQuery {
            dims: vec![cat],
            relevant: vec![vec!["a".into(), "b".into()]],
            aggregates: vec![
                (AggFunction::Sum, AggColumn::Column(num)),
                (AggFunction::Avg, AggColumn::Column(num)),
            ],
        };
        let runs: Vec<CubeResult> = [1usize, 2, 4, 8]
            .iter()
            .map(|&threads| {
                q.execute_with(
                    &db,
                    &CubeOptions {
                        threads,
                        parallel_row_threshold: 1,
                        clamp_to_hardware: false,
                        partition_blocks: 1,
                        ..CubeOptions::default()
                    },
                )
                .unwrap()
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(r.groups, runs[0].groups);
            assert_eq!(r.stats.partitions_scanned, runs[0].stats.partitions_scanned);
            assert_eq!(r.stats.partition_merges, runs[0].stats.partition_merges);
        }
    }

    /// Clustered (sorted) category column spanning four storage blocks:
    /// block 0 is all "aaa", block 1 mixes the rare literal with "zzz",
    /// blocks 2–3 are all "zzz".
    fn clustered_db() -> Database {
        let n = 4 * SCAN_BLOCK;
        let cats: Vec<Value> = (0..n)
            .map(|i| {
                let c = if i < SCAN_BLOCK {
                    "aaa"
                } else if i < SCAN_BLOCK + 100 {
                    "rare"
                } else {
                    "zzz"
                };
                Value::Str(c.into())
            })
            .collect();
        let nums: Vec<Value> = (0..n)
            .map(|i| {
                if i % 13 == 0 {
                    Value::Null
                } else {
                    Value::Int((i % 211) as i64)
                }
            })
            .collect();
        let t = Table::from_columns("clustered", vec![("cat", cats), ("num", nums)]).unwrap();
        let mut db = Database::new("clustered");
        db.add_table(t);
        db
    }

    #[test]
    fn encoded_scan_skips_constant_blocks_for_counts() {
        let db = clustered_db();
        let cat = db.resolve("clustered", "cat").unwrap();
        let num = db.resolve("clustered", "num").unwrap();
        let q = CubeQuery {
            dims: vec![cat],
            relevant: vec![vec!["rare".into()]],
            aggregates: vec![
                (AggFunction::Count, AggColumn::Star),
                (AggFunction::Count, AggColumn::Column(num)),
            ],
        };
        let sealed = q.execute(&db).unwrap();
        // Blocks 0, 2, 3 are provably constant (one run, or no literal in
        // the zone range) and every aggregate is a count — bulk-applied.
        // Block 1 contains the literal and must decode.
        assert_eq!(sealed.stats.blocks_skipped, 3, "{:?}", sealed.stats);
        assert_eq!(sealed.stats.blocks_scanned, 1, "{:?}", sealed.stats);
        assert!(sealed.stats.bytes_scanned > 0, "{:?}", sealed.stats);

        let mut plain_db = db.clone();
        plain_db.unseal_tables();
        let plain = q.execute(&plain_db).unwrap();
        assert_eq!(plain.stats.blocks_scanned + plain.stats.blocks_skipped, 0);
        assert_eq!(sealed.groups, plain.groups);
    }

    #[test]
    fn encoded_scan_splats_constant_blocks_for_value_aggregates() {
        let db = clustered_db();
        let cat = db.resolve("clustered", "cat").unwrap();
        let num = db.resolve("clustered", "num").unwrap();
        let q = CubeQuery {
            dims: vec![cat],
            relevant: vec![vec!["rare".into()]],
            aggregates: vec![
                (AggFunction::Count, AggColumn::Star),
                (AggFunction::Sum, AggColumn::Column(num)),
                (AggFunction::Avg, AggColumn::Column(num)),
                (AggFunction::Min, AggColumn::Column(num)),
            ],
        };
        let sealed = q.execute(&db).unwrap();
        // Sum/Avg/Min need row values, so no block is bulk-applied — but
        // constant blocks still save the dimension decode (splat) and the
        // one mixed block pays decode bytes.
        assert_eq!(sealed.stats.blocks_skipped, 0, "{:?}", sealed.stats);
        assert_eq!(sealed.stats.blocks_scanned, 4, "{:?}", sealed.stats);
        assert!(sealed.stats.bytes_scanned > 0, "{:?}", sealed.stats);

        let mut plain_db = db.clone();
        plain_db.unseal_tables();
        let plain = q.execute(&plain_db).unwrap();
        assert_eq!(sealed.groups, plain.groups, "encoded must be bit-identical");
    }

    #[test]
    fn encoded_scan_falls_back_for_numeric_dimensions() {
        let db = clustered_db();
        let num = db.resolve("clustered", "num").unwrap();
        let q = CubeQuery {
            dims: vec![num],
            relevant: vec![vec![Value::Int(7)]],
            aggregates: vec![(AggFunction::Count, AggColumn::Star)],
        };
        // Numeric dimensions probe per row — the plan must decline the
        // encoded path even though the table is sealed.
        let result = q.execute(&db).unwrap();
        assert_eq!(result.stats.blocks_scanned + result.stats.blocks_skipped, 0);
        let mut plain_db = db.clone();
        plain_db.unseal_tables();
        assert_eq!(result.groups, q.execute(&plain_db).unwrap().groups);
    }

    #[test]
    fn fused_encoded_members_tally_like_solo() {
        let db = clustered_db();
        let cat = db.resolve("clustered", "cat").unwrap();
        let num = db.resolve("clustered", "num").unwrap();
        let count_cube = CubeQuery {
            dims: vec![cat],
            relevant: vec![vec!["rare".into()]],
            aggregates: vec![(AggFunction::Count, AggColumn::Star)],
        };
        let sum_cube = CubeQuery {
            dims: vec![cat],
            relevant: vec![vec!["aaa".into(), "zzz".into()]],
            aggregates: vec![(AggFunction::Sum, AggColumn::Column(num))],
        };
        let options = CubeOptions::default();
        let fused = execute_fused_in(&db, &[&count_cube, &sum_cube], &options, None).unwrap();
        for (cube, fused_result) in [&count_cube, &sum_cube].iter().zip(&fused) {
            let solo = cube.execute_with(&db, &options).unwrap();
            assert_eq!(fused_result.stats, solo.stats);
            assert_eq!(fused_result.groups, solo.groups);
        }
        assert!(fused[0].stats.blocks_skipped > 0, "{:?}", fused[0].stats);
    }

    // -----------------------------------------------------------------------
    // Watermark visibility and delta patching
    // -----------------------------------------------------------------------

    use crate::block::BLOCK_ROWS;
    use crate::schema::ForeignKey;
    use proptest::prelude::*;

    /// One row of the synthetic append corpus: a deterministic function of
    /// the row index, so appended batches continue the same distribution and
    /// a naive oracle can recompute any aggregate from first principles.
    fn wide_row(i: usize) -> Vec<Value> {
        let cat = match i % 5 {
            0 => Value::Null,
            k => Value::Str(format!("c{k}")),
        };
        let val = if i.is_multiple_of(7) {
            Value::Null
        } else {
            Value::Int((i % 101) as i64 - 13)
        };
        let score = if i.is_multiple_of(11) {
            Value::Null
        } else {
            Value::Float(i as f64 * 0.37 + 0.1)
        };
        vec![cat, val, score]
    }

    fn wide_db(rows: usize) -> Database {
        let mut cat = Vec::with_capacity(rows);
        let mut val = Vec::with_capacity(rows);
        let mut score = Vec::with_capacity(rows);
        for i in 0..rows {
            let mut r = wide_row(i);
            score.push(r.pop().unwrap());
            val.push(r.pop().unwrap());
            cat.push(r.pop().unwrap());
        }
        let t = Table::from_columns("events", vec![("cat", cat), ("val", val), ("score", score)])
            .unwrap();
        let mut db = Database::new("wide");
        db.add_table(t);
        db
    }

    /// A cube exercising every patch-class aggregate over the append corpus.
    fn wide_cube(db: &Database) -> CubeQuery {
        let cat = db.resolve("events", "cat").unwrap();
        let val = db.resolve("events", "val").unwrap();
        let score = db.resolve("events", "score").unwrap();
        CubeQuery {
            dims: vec![cat],
            relevant: vec![vec!["c1".into(), "c3".into()]],
            aggregates: vec![
                (AggFunction::Count, AggColumn::Star),
                (AggFunction::Count, AggColumn::Column(val)),
                (AggFunction::Sum, AggColumn::Column(val)),
                (AggFunction::Avg, AggColumn::Column(score)),
                (AggFunction::Min, AggColumn::Column(val)),
                (AggFunction::Max, AggColumn::Column(score)),
            ],
        }
    }

    /// Bit-exact fingerprint of a result's groups (f64s compared by bits).
    fn grid_bits(r: &CubeResult) -> Vec<(u64, Vec<Option<u64>>)> {
        let mut v: Vec<(u64, Vec<Option<u64>>)> = r
            .groups
            .iter()
            .map(|(k, vals)| (k.0, vals.iter().map(|o| o.map(f64::to_bits)).collect()))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn bulk_counts_clamp_to_a_partially_visible_tail_block() {
        // `cat` is constant within each storage block, so every block has a
        // provably-constant dimension cell and this count-only cube takes
        // the bulk (zone-map) path — including over the partial tail.
        let n = 2 * BLOCK_ROWS + 700;
        let cat: Vec<Value> = (0..n)
            .map(|i| Value::Str(format!("b{}", i / BLOCK_ROWS)))
            .collect();
        let val: Vec<Value> = (0..n)
            .map(|i| {
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Int(i as i64)
                }
            })
            .collect();
        let tag: Vec<Value> = (0..n)
            .map(|i| match i % 3 {
                0 => Value::Null,
                k => Value::Str(format!("t{k}")),
            })
            .collect();
        let t =
            Table::from_columns("events", vec![("cat", cat), ("val", val), ("tag", tag)]).unwrap();
        let mut base_db = Database::new("banded");
        base_db.add_table(t);
        let cat = base_db.resolve("events", "cat").unwrap();
        let val = base_db.resolve("events", "val").unwrap();
        let tag = base_db.resolve("events", "tag").unwrap();
        let q = CubeQuery {
            dims: vec![cat],
            relevant: vec![vec!["b0".into()]],
            aggregates: vec![
                (AggFunction::Count, AggColumn::Star),
                // Numeric agg encoding: partial-block nulls from the plain column.
                (AggFunction::Count, AggColumn::Column(val)),
                // Codes agg encoding: partial-block nulls from the bitmap/runs.
                (AggFunction::Count, AggColumn::Column(tag)),
            ],
        };
        for wm in [
            1,
            BLOCK_ROWS - 1,
            BLOCK_ROWS,
            BLOCK_ROWS + 1,
            2 * BLOCK_ROWS - 1,
            2 * BLOCK_ROWS,
            2 * BLOCK_ROWS + 1,
            n,
        ] {
            let mut db = base_db.clone();
            db.table_mut(0).set_watermark(wm);
            let sealed = q.execute(&db).unwrap();
            // Every touched block is constant in `cat`, so the whole scan is
            // bulk-applied from zone metadata plus prefix null counts.
            let touched = wm.div_ceil(BLOCK_ROWS) as u64;
            assert_eq!(sealed.stats.blocks_skipped, touched, "wm={wm}");
            assert_eq!(sealed.stats.blocks_scanned, 0, "wm={wm}");
            let mut plain_db = db.clone();
            plain_db.unseal_tables();
            let plain = q.execute(&plain_db).unwrap();
            assert_eq!(grid_bits(&sealed), grid_bits(&plain), "wm={wm}");
            // Naive oracle from the generator formulas.
            let b0 = [DimSel::Literal(0)];
            assert_eq!(
                sealed.get_count(&b0, 0),
                wm.min(BLOCK_ROWS) as f64,
                "wm={wm}"
            );
            assert_eq!(
                sealed.get_count(&b0, 1),
                (0..wm.min(BLOCK_ROWS)).filter(|i| i % 7 != 0).count() as f64,
                "wm={wm}"
            );
            let every = [DimSel::Any];
            assert_eq!(
                sealed.get_count(&every, 2),
                (0..wm).filter(|i| i % 3 != 0).count() as f64,
                "wm={wm}"
            );
        }
    }

    #[test]
    fn partial_visibility_matches_a_truncated_rebuild() {
        let n = 2 * BLOCK_ROWS + 421;
        let full = wide_db(n);
        let q = wide_cube(&full);
        for wm in [
            3,
            BLOCK_ROWS - 1,
            BLOCK_ROWS,
            BLOCK_ROWS + 1,
            2 * BLOCK_ROWS + 1,
            n,
        ] {
            let mut db = full.clone();
            db.table_mut(0).set_watermark(wm);
            let visible = q.execute(&db).unwrap();
            assert_eq!(visible.visible_rows(), wm as u64);
            // Ground truth: a database physically truncated at the watermark.
            let expect = q.execute(&wide_db(wm)).unwrap();
            assert_eq!(grid_bits(&visible), grid_bits(&expect), "wm={wm}");
            // The plain (unencoded) path clamps identically.
            let mut plain_db = db.clone();
            plain_db.unseal_tables();
            let plain = q.execute(&plain_db).unwrap();
            assert_eq!(grid_bits(&plain), grid_bits(&expect), "wm={wm}");
        }
    }

    #[test]
    fn patched_grids_are_bit_identical_to_cold_rescans() {
        let n1 = 2 * BLOCK_ROWS + 300;
        let mut db = wide_db(n1);
        let q = wide_cube(&db);
        let options = CubeOptions {
            partition_blocks: 1,
            ..CubeOptions::default()
        };
        let r1 = q.execute_with(&db, &options).unwrap();
        let cp = r1
            .checkpoint()
            .expect("patch-class cube over an identity relation captures")
            .clone();
        assert_eq!(
            cp.rows(),
            2 * BLOCK_ROWS,
            "checkpoint at the last span boundary"
        );

        let batch: Vec<Vec<Value>> = (n1..n1 + 500).map(wide_row).collect();
        db.append_rows("events", &batch).unwrap();
        let n2 = n1 + 500;

        let cold = q.execute_with(&db, &options).unwrap();
        let patched = execute_patch_in(&db, &cp, &options, None).unwrap();
        assert_eq!(grid_bits(&patched), grid_bits(&cold));
        assert_eq!(patched.visible_rows(), n2 as u64);
        assert_eq!(patched.stats.grids_patched, 1);
        assert_eq!(cold.stats.grids_patched, 0);
        assert_eq!(
            patched.stats.delta_rows_scanned,
            (n2 - 2 * BLOCK_ROWS) as u64
        );
        assert!(patched.stats.rows_scanned < cold.stats.rows_scanned);

        // Avg merges via (sum, count) parts: the patched value is the mean
        // over ALL visible rows, not a mean of per-epoch means.
        let c1 = [DimSel::Literal(0)];
        let scores: Vec<f64> = (0..n2)
            .filter(|&i| i % 5 == 1 && i % 11 != 0)
            .map(|i| i as f64 * 0.37 + 0.1)
            .collect();
        let naive_avg = scores.iter().sum::<f64>() / scores.len() as f64;
        let got = patched.get(&c1, 3).unwrap();
        assert!((got - naive_avg).abs() <= 1e-9 * naive_avg.abs().max(1.0));

        // The patched result carries a refreshed checkpoint: patch again.
        let cp2 = patched
            .checkpoint()
            .expect("patched result re-checkpoints")
            .clone();
        assert_eq!(cp2.rows(), (n2 / BLOCK_ROWS) * BLOCK_ROWS);
        let batch2: Vec<Vec<Value>> = (n2..n2 + 77).map(wide_row).collect();
        db.append_rows("events", &batch2).unwrap();
        let cold2 = q.execute_with(&db, &options).unwrap();
        let patched2 = execute_patch_in(&db, &cp2, &options, None).unwrap();
        assert_eq!(grid_bits(&patched2), grid_bits(&cold2));
    }

    #[test]
    fn checkpoint_at_exact_span_boundary_scans_only_the_appended_rows() {
        let n = 2 * BLOCK_ROWS;
        let mut db = wide_db(n);
        let q = wide_cube(&db);
        let options = CubeOptions {
            partition_blocks: 1,
            ..CubeOptions::default()
        };
        let cp = q
            .execute_with(&db, &options)
            .unwrap()
            .checkpoint()
            .expect("exact-multiple relations checkpoint at n_rows")
            .clone();
        assert_eq!(cp.rows(), n);
        let batch: Vec<Vec<Value>> = (n..n + 10).map(wide_row).collect();
        db.append_rows("events", &batch).unwrap();
        let cold = q.execute_with(&db, &options).unwrap();
        let patched = execute_patch_in(&db, &cp, &options, None).unwrap();
        assert_eq!(patched.stats.delta_rows_scanned, 10);
        assert_eq!(grid_bits(&patched), grid_bits(&cold));
    }

    #[test]
    fn recompute_class_aggregates_capture_no_checkpoint() {
        let mut db = wide_db(2 * BLOCK_ROWS + 10);
        let cat = db.resolve("events", "cat").unwrap();
        let val = db.resolve("events", "val").unwrap();
        let options = CubeOptions {
            partition_blocks: 1,
            ..CubeOptions::default()
        };
        for f in [AggFunction::CountDistinct, AggFunction::Median] {
            let q = CubeQuery {
                dims: vec![cat],
                relevant: vec![vec!["c1".into()]],
                aggregates: vec![
                    (AggFunction::Count, AggColumn::Star),
                    (f, AggColumn::Column(val)),
                ],
            };
            let r = q.execute_with(&db, &options).unwrap();
            assert!(
                r.checkpoint().is_none(),
                "{f:?} must force a full recompute on append"
            );
            // Appends stay correct via recompute: the cold re-scan agrees
            // with a naive per-query execution at the new watermark.
            let batch: Vec<Vec<Value>> = (0..64).map(|i| wide_row(i + 13)).collect();
            db.append_rows("events", &batch).unwrap();
            let r2 = q.execute_with(&db, &options).unwrap();
            let naive = execute_query(
                &db,
                &SimpleAggregateQuery::new(
                    f,
                    AggColumn::Column(val),
                    vec![Predicate::new(cat, "c1")],
                ),
            )
            .unwrap();
            assert_eq!(r2.get(&[DimSel::Literal(0)], 1), naive);
        }
    }

    #[test]
    fn join_relations_capture_no_checkpoint() {
        // Join outputs are not prefix-stable under appends — a new row on
        // the probe side splices tuples anywhere in the output order — so
        // eligible-looking scans over joins must not checkpoint.
        let n = 2 * BLOCK_ROWS + 50;
        let players = Table::from_columns(
            "players",
            vec![
                ("player_id", vec![Value::Int(0), Value::Int(1)]),
                ("team", vec!["ravens".into(), "browns".into()]),
            ],
        )
        .unwrap();
        let susp = Table::from_columns(
            "suspensions",
            vec![
                (
                    "player_id",
                    (0..n).map(|i| Value::Int((i % 2) as i64)).collect(),
                ),
                (
                    "category",
                    (0..n).map(|i| Value::Str(format!("k{}", i % 3))).collect(),
                ),
            ],
        )
        .unwrap();
        let mut db = Database::new("nfl");
        let p = db.add_table(players);
        let s = db.add_table(susp);
        db.add_foreign_key(ForeignKey {
            from_table: s,
            from_column: 0,
            to_table: p,
            to_column: 0,
        })
        .unwrap();
        let team = db.resolve("players", "team").unwrap();
        let pid = db.resolve("suspensions", "player_id").unwrap();
        let q = CubeQuery {
            dims: vec![team],
            relevant: vec![vec!["ravens".into()]],
            // Aggregating a suspensions column forces the two-table join.
            aggregates: vec![(AggFunction::Count, AggColumn::Column(pid))],
        };
        let options = CubeOptions {
            partition_blocks: 1,
            ..CubeOptions::default()
        };
        let r = q.execute_with(&db, &options).unwrap();
        assert_eq!(r.visible_rows(), n as u64);
        assert!(r.checkpoint().is_none(), "join scans must not checkpoint");
    }

    #[test]
    fn checkpoint_eligibility_gates() {
        // Below one span there is no stable prefix to checkpoint.
        let small = wide_db(100);
        let q = wide_cube(&small);
        let opts1 = CubeOptions {
            partition_blocks: 1,
            ..CubeOptions::default()
        };
        assert!(q
            .execute_with(&small, &opts1)
            .unwrap()
            .checkpoint()
            .is_none());

        let db = wide_db(3 * BLOCK_ROWS);
        // Capture disabled by options.
        let off = CubeOptions {
            capture_checkpoints: false,
            ..opts1
        };
        assert!(q.execute_with(&db, &off).unwrap().checkpoint().is_none());
        // Partitioning disabled: one monolithic range, no span boundary.
        let mono = CubeOptions {
            partition_blocks: 0,
            ..CubeOptions::default()
        };
        assert!(q.execute_with(&db, &mono).unwrap().checkpoint().is_none());
        // Compatibility is keyed on the scan shape, not the worker count.
        let r = q.execute_with(&db, &opts1).unwrap();
        let cp = r.checkpoint().unwrap();
        assert_eq!(cp.rows(), 3 * BLOCK_ROWS);
        assert!(cp.compatible(&opts1));
        assert!(cp.compatible(&CubeOptions {
            threads: 8,
            ..opts1
        }));
        assert!(!cp.compatible(&CubeOptions {
            partition_blocks: 2,
            ..opts1
        }));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The tentpole invariant: after any sequence of appends, patching a
        /// checkpointed grid forward is bit-identical to a cold full rescan
        /// at the same watermark — at every worker count and span — and both
        /// agree with a naive oracle recomputed from the row generator.
        #[test]
        fn incremental_matches_full_rescan(
            base in 64usize..5000,
            batches in prop::collection::vec(1usize..1200, 1..4),
            span_sel in 0usize..2,
            worker_sel in 0usize..4,
        ) {
            let span_blocks = [1usize, 64][span_sel];
            let threads = [1usize, 2, 4, 8][worker_sel];
            let options = CubeOptions {
                partition_blocks: span_blocks,
                threads,
                parallel_row_threshold: 1,
                clamp_to_hardware: false,
                ..CubeOptions::default()
            };
            let mut db = wide_db(base);
            let q = wide_cube(&db);
            let mut current = q.execute_with(&db, &options).unwrap();
            let mut rows_total = base;
            for batch in batches {
                let rows: Vec<Vec<Value>> =
                    (rows_total..rows_total + batch).map(wide_row).collect();
                rows_total += batch;
                db.append_rows("events", &rows).unwrap();
                let cold = q.execute_with(&db, &options).unwrap();
                let patched = match current.checkpoint() {
                    Some(cp) => {
                        let p = execute_patch_in(&db, cp, &options, None).unwrap();
                        prop_assert_eq!(p.stats.grids_patched, 1);
                        // The delta never exceeds the appended rows plus one
                        // (partially re-scanned) span.
                        prop_assert!(
                            (p.stats.delta_rows_scanned as usize)
                                <= batch + span_blocks * BLOCK_ROWS,
                            "delta {} for batch {} at span {}",
                            p.stats.delta_rows_scanned, batch, span_blocks
                        );
                        p
                    }
                    // Below one span no checkpoint exists; re-verify cold.
                    None => q.execute_with(&db, &options).unwrap(),
                };
                prop_assert_eq!(grid_bits(&patched), grid_bits(&cold));
                // Naive oracle on the exact-integer aggregates of group c1.
                let c1 = [DimSel::Literal(0)];
                let count = (0..rows_total).filter(|i| i % 5 == 1).count();
                prop_assert_eq!(patched.get_count(&c1, 0), count as f64);
                let sum: i64 = (0..rows_total)
                    .filter(|&i| i % 5 == 1 && i % 7 != 0)
                    .map(|i| (i % 101) as i64 - 13)
                    .sum();
                prop_assert_eq!(patched.get(&c1, 2), Some(sum as f64));
                current = patched;
            }
        }
    }
}
