//! CSV loading with type inference.
//!
//! The paper's test data sets are "mostly stored in the .csv format"
//! (Appendix B); this module is the ingestion path. It implements an
//! RFC 4180-style parser by hand (quoted fields, embedded separators,
//! escaped quotes, both `\n` and `\r\n` line ends) plus a two-pass loader:
//! pass one infers the narrowest column type that fits every cell, pass two
//! materializes the columns.

use crate::error::{RelationalError, Result};
use crate::schema::{ColumnMeta, TableSchema};
use crate::table::Table;
use crate::value::{DataType, Value};

/// Parse raw CSV text into rows of string fields.
///
/// Returns an error for structurally broken input (unterminated quotes).
/// Rows are *not* required to be rectangular here; the loader pads or
/// truncates to the header width, like common spreadsheet exports expect.
pub fn parse_csv(input: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut any_char_on_row = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    field.push('\n');
                    line += 1;
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                any_char_on_row = true;
            }
            ',' => {
                row.push(std::mem::take(&mut field));
                any_char_on_row = true;
            }
            '\r' => {
                // Swallow; the following '\n' (if any) ends the record.
            }
            '\n' => {
                line += 1;
                if any_char_on_row || !field.is_empty() || !row.is_empty() {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                any_char_on_row = false;
            }
            _ => {
                field.push(c);
                any_char_on_row = true;
            }
        }
    }
    if in_quotes {
        return Err(RelationalError::Csv {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if any_char_on_row || !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Infer the narrowest [`DataType`] that fits every cell of a column.
///
/// `Int` ⊂ `Float` ⊂ `Str`; NULL cells fit anything. An all-null column
/// defaults to `Str` so it can still be used in equality predicates.
fn infer_type<'a>(cells: impl Iterator<Item = &'a str>) -> DataType {
    let mut ty: Option<DataType> = None;
    for cell in cells {
        let v = Value::parse_cell(cell);
        let cell_ty = match v.kind() {
            None => continue,
            Some(t) => t,
        };
        ty = Some(match (ty, cell_ty) {
            (None, t) => t,
            (Some(DataType::Int), DataType::Int) => DataType::Int,
            (Some(DataType::Int), DataType::Float) | (Some(DataType::Float), DataType::Int) => {
                DataType::Float
            }
            (Some(DataType::Float), DataType::Float) => DataType::Float,
            // Any string cell demotes the whole column to Str.
            _ => DataType::Str,
        });
        if ty == Some(DataType::Str) {
            break;
        }
    }
    ty.unwrap_or(DataType::Str)
}

/// Load a CSV document (with header row) into a [`Table`].
pub fn load_csv(table_name: &str, input: &str) -> Result<Table> {
    let rows = parse_csv(input)?;
    let mut iter = rows.into_iter();
    let header = iter.next().ok_or(RelationalError::Csv {
        line: 1,
        message: "empty document".into(),
    })?;
    let width = header.len();
    let data_rows: Vec<Vec<String>> = iter.collect();

    let mut metas = Vec::with_capacity(width);
    for (i, name) in header.iter().enumerate() {
        let ty = infer_type(
            data_rows
                .iter()
                .map(|r| r.get(i).map(String::as_str).unwrap_or("")),
        );
        let name = if name.trim().is_empty() {
            format!("column{}", i + 1)
        } else {
            name.trim().to_string()
        };
        metas.push(ColumnMeta::new(name, ty));
    }

    let mut table = Table::new(TableSchema::new(table_name, metas));
    let mut scratch: Vec<Value> = Vec::with_capacity(width);
    for row in &data_rows {
        scratch.clear();
        for i in 0..width {
            let raw = row.get(i).map(String::as_str).unwrap_or("");
            scratch.push(Value::parse_cell(raw));
        }
        table.push_row(&scratch)?;
    }
    table.seal();
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_csv() {
        let rows = parse_csv("a,b,c\n1,2,3\n4,5,6\n").unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec!["a", "b", "c"]);
        assert_eq!(rows[2], vec!["4", "5", "6"]);
    }

    #[test]
    fn parses_quoted_fields() {
        let rows = parse_csv("name,cat\n\"rice, ray\",\"personal conduct\"\n").unwrap();
        assert_eq!(rows[1][0], "rice, ray");
        assert_eq!(rows[1][1], "personal conduct");
    }

    #[test]
    fn parses_escaped_quotes_and_newlines() {
        let rows = parse_csv("q\n\"he said \"\"hi\"\"\"\n\"line1\nline2\"\n").unwrap();
        assert_eq!(rows[1][0], "he said \"hi\"");
        assert_eq!(rows[2][0], "line1\nline2");
    }

    #[test]
    fn handles_crlf_and_missing_trailing_newline() {
        let rows = parse_csv("a,b\r\n1,2\r\n3,4").unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], vec!["3", "4"]);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let err = parse_csv("a\n\"oops\n").unwrap_err();
        assert!(matches!(err, RelationalError::Csv { .. }));
    }

    #[test]
    fn empty_fields_are_kept() {
        let rows = parse_csv("a,b,c\n1,,3\n").unwrap();
        assert_eq!(rows[1], vec!["1", "", "3"]);
    }

    #[test]
    fn loads_table_with_inferred_types() {
        let t = load_csv(
            "nflsuspensions",
            "name,games,year,fine\nrice,indef,2014,0\ngordon,16,2014,0.5\n",
        )
        .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(
            t.column_by_name("games").unwrap().data_type(),
            DataType::Str
        );
        assert_eq!(t.column_by_name("year").unwrap().data_type(), DataType::Int);
        assert_eq!(
            t.column_by_name("fine").unwrap().data_type(),
            DataType::Float
        );
    }

    #[test]
    fn numeric_column_with_blanks_stays_numeric() {
        let t = load_csv("t", "x,y\n1,a\n,b\n3,c\n").unwrap();
        assert_eq!(t.column(0).data_type(), DataType::Int);
        assert!(t.column(0).is_null(1));
        assert_eq!(t.get(2, 0), Value::Int(3));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let rows = parse_csv("a\n1\n\n3\n").unwrap();
        assert_eq!(rows.len(), 3, "fully blank lines do not form records");
    }

    #[test]
    fn ragged_rows_are_padded_and_truncated() {
        let t = load_csv("t", "a,b\n1\n2,3,4\n").unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.get(0, 1), Value::Null);
        assert_eq!(t.get(1, 1), Value::Int(3));
    }

    #[test]
    fn empty_document_is_an_error() {
        assert!(load_csv("t", "").is_err());
    }

    #[test]
    fn blank_header_names_are_synthesized() {
        let t = load_csv("t", ",b\n1,2\n").unwrap();
        assert_eq!(t.schema.columns[0].name, "column1");
    }

    #[test]
    fn all_null_column_defaults_to_str() {
        let t = load_csv("t", "a,b\n1,\n2,\n").unwrap();
        assert_eq!(t.column_by_name("b").unwrap().data_type(), DataType::Str);
    }
}
