//! Query merging (§6.2): cover many candidate queries with few cubes.
//!
//! Candidate queries for the same claim — and across claims of the same
//! document — are highly similar. The planner groups them by their
//! *predicate column set*: each group becomes one [`CubeQuery`] whose
//! dimensions are those columns, whose relevant literals are the union of
//! the group's predicate values, and whose aggregate list is the union of
//! the group's `(function, column)` pairs. Ratio aggregates (`Percentage`,
//! `ConditionalProbability`) are rewritten into `Count` aggregates and
//! derived from the cube's rollup groups, exactly as footnote 1 of the
//! paper defines them.

use crate::aggregate::ratio_from_counts;
use crate::cache::{CacheKey, CachedSlice, EvalCache};
use crate::cube::CubeQuery;
use crate::database::{ColumnRef, Database};
use crate::error::Result;
use crate::query::{AggColumn, AggFunction, SimpleAggregateQuery};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// How one input query reads its result out of its cube.
#[derive(Debug, Clone)]
enum LookupKind {
    /// Plain aggregate: read slice `agg` at the query's assignment.
    Direct { agg: usize },
    /// `100 · count(full assignment) / count(all-Any)`.
    Percentage { count_agg: usize },
    /// `100 · count(full assignment) / count(condition dim only)`.
    CondProb {
        count_agg: usize,
        condition_dim: usize,
    },
}

/// One query's pointer into the plan.
#[derive(Debug, Clone)]
struct QueryTarget {
    cube: usize,
    /// Per cube dimension: `Some(value)` if restricted, `None` otherwise.
    assignment: Vec<Option<Value>>,
    kind: LookupKind,
}

/// A planned batch: cubes to execute plus per-query lookups.
#[derive(Debug, Clone)]
pub struct MergePlan {
    cubes: Vec<CubeQuery>,
    targets: Vec<QueryTarget>,
}

/// Execution statistics for one plan run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeStats {
    /// Cube executions actually performed (cache misses).
    pub cubes_executed: usize,
    /// Cube executions satisfied from the cache.
    pub cubes_cached: usize,
    /// Total rows scanned by executed cubes.
    pub rows_scanned: u64,
}

/// Plans merged evaluation of simple aggregate queries.
pub struct MergePlanner;

impl MergePlanner {
    /// Build a plan covering all `queries`.
    pub fn plan(db: &Database, queries: &[SimpleAggregateQuery]) -> Result<MergePlan> {
        // Group queries by canonical (sorted) predicate column set.
        let mut groups: HashMap<Vec<ColumnRef>, Vec<usize>> = HashMap::new();
        for (i, q) in queries.iter().enumerate() {
            q.validate(db)?;
            let mut dims = q.predicate_columns();
            dims.sort_unstable();
            dims.dedup();
            groups.entry(dims).or_default().push(i);
        }

        let mut cubes: Vec<CubeQuery> = Vec::with_capacity(groups.len());
        let mut targets: Vec<Option<QueryTarget>> = vec![None; queries.len()];

        // Deterministic cube order: sort groups by their dimension key.
        let mut ordered: Vec<(Vec<ColumnRef>, Vec<usize>)> = groups.into_iter().collect();
        ordered.sort_by(|a, b| a.0.cmp(&b.0));

        for (dims, members) in ordered {
            let cube_idx = cubes.len();
            // Union of relevant literals per dimension.
            let mut relevant: Vec<Vec<Value>> = vec![Vec::new(); dims.len()];
            // Union of value aggregates (ratio fns contribute a Count).
            let mut aggregates: Vec<(AggFunction, AggColumn)> = Vec::new();
            let agg_index = |aggs: &mut Vec<(AggFunction, AggColumn)>,
                             f: AggFunction,
                             c: AggColumn| {
                match aggs.iter().position(|(af, ac)| *af == f && *ac == c) {
                    Some(i) => i,
                    None => {
                        aggs.push((f, c));
                        aggs.len() - 1
                    }
                }
            };

            for &qi in &members {
                let q = &queries[qi];
                let mut assignment: Vec<Option<Value>> = vec![None; dims.len()];
                for p in &q.predicates {
                    let d = dims.iter().position(|c| *c == p.column).expect("dim");
                    if !relevant[d].contains(&p.value) {
                        relevant[d].push(p.value.clone());
                    }
                    assignment[d] = Some(p.value.clone());
                }
                let kind = match q.function {
                    AggFunction::Percentage => LookupKind::Percentage {
                        count_agg: agg_index(&mut aggregates, AggFunction::Count, q.column),
                    },
                    AggFunction::ConditionalProbability => {
                        let cond_col = q.predicates[0].column;
                        LookupKind::CondProb {
                            count_agg: agg_index(&mut aggregates, AggFunction::Count, q.column),
                            condition_dim: dims
                                .iter()
                                .position(|c| *c == cond_col)
                                .expect("condition dim"),
                        }
                    }
                    f => LookupKind::Direct {
                        agg: agg_index(&mut aggregates, f, q.column),
                    },
                };
                targets[qi] = Some(QueryTarget {
                    cube: cube_idx,
                    assignment,
                    kind,
                });
            }
            cubes.push(CubeQuery {
                dims,
                relevant,
                aggregates,
            });
        }

        Ok(MergePlan {
            cubes,
            targets: targets.into_iter().map(|t| t.expect("assigned")).collect(),
        })
    }
}

impl MergePlan {
    /// Number of cube queries in the plan.
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Execute without caching. Returns one result per input query.
    pub fn execute(&self, db: &Database) -> Result<(Vec<Option<f64>>, MergeStats)> {
        self.execute_inner(db, None)
    }

    /// Execute with a shared cache: cube slices already cached (and covering
    /// the needed literals) are not recomputed, and freshly computed slices
    /// are stored for later claims and EM iterations.
    pub fn execute_cached(
        &self,
        db: &Database,
        cache: &EvalCache,
    ) -> Result<(Vec<Option<f64>>, MergeStats)> {
        self.execute_inner(db, Some(cache))
    }

    fn execute_inner(
        &self,
        db: &Database,
        cache: Option<&EvalCache>,
    ) -> Result<(Vec<Option<f64>>, MergeStats)> {
        let mut stats = MergeStats::default();
        // Per cube: one slice per aggregate position.
        let mut slices: Vec<Vec<CachedSlice>> = Vec::with_capacity(self.cubes.len());
        for cube in &self.cubes {
            let mut cube_slices: Vec<Option<CachedSlice>> = vec![None; cube.aggregates.len()];
            let mut missing: Vec<usize> = Vec::new();
            if let Some(cache) = cache {
                for (i, (f, c)) in cube.aggregates.iter().enumerate() {
                    let key = CacheKey::new(*f, *c, cube.dims.clone());
                    match cache.get(&key, &cube.relevant) {
                        Some(s) => cube_slices[i] = Some(s),
                        None => missing.push(i),
                    }
                }
            } else {
                missing = (0..cube.aggregates.len()).collect();
            }

            if missing.is_empty() {
                stats.cubes_cached += 1;
            } else {
                // Execute a cube restricted to the missing aggregates.
                let sub = CubeQuery {
                    dims: cube.dims.clone(),
                    relevant: cube.relevant.clone(),
                    aggregates: missing.iter().map(|&i| cube.aggregates[i]).collect(),
                };
                let result = Arc::new(sub.execute(db)?);
                stats.cubes_executed += 1;
                stats.rows_scanned += result.stats.rows_scanned;
                for (pos, &i) in missing.iter().enumerate() {
                    let (f, c) = cube.aggregates[i];
                    let slice = CachedSlice::new(result.clone(), pos, f);
                    if let Some(cache) = cache {
                        cache.put(CacheKey::new(f, c, cube.dims.clone()), slice.clone());
                    }
                    cube_slices[i] = Some(slice);
                }
            }
            slices.push(
                cube_slices
                    .into_iter()
                    .map(|s| s.expect("slice filled"))
                    .collect(),
            );
        }

        // Resolve each query's lookup.
        let results = self
            .targets
            .iter()
            .map(|t| resolve(&slices[t.cube], t))
            .collect();
        Ok((results, stats))
    }
}

fn resolve(slices: &[CachedSlice], target: &QueryTarget) -> Option<f64> {
    match &target.kind {
        LookupKind::Direct { agg } => slices[*agg].lookup(&target.assignment).ok().flatten(),
        LookupKind::Percentage { count_agg } => {
            let slice = &slices[*count_agg];
            let num = slice.lookup_count(&target.assignment).ok()?;
            let all_any: Vec<Option<Value>> = vec![None; target.assignment.len()];
            let den = slice.lookup_count(&all_any).ok()?;
            ratio_from_counts(num, den)
        }
        LookupKind::CondProb {
            count_agg,
            condition_dim,
        } => {
            let slice = &slices[*count_agg];
            let num = slice.lookup_count(&target.assignment).ok()?;
            let mut cond_only: Vec<Option<Value>> = vec![None; target.assignment.len()];
            cond_only[*condition_dim] = target.assignment[*condition_dim].clone();
            let den = slice.lookup_count(&cond_only).ok()?;
            ratio_from_counts(num, den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_query;
    use crate::query::Predicate;
    use crate::table::Table;

    fn nfl() -> Database {
        let t = Table::from_columns(
            "nflsuspensions",
            vec![
                (
                    "games",
                    vec![
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "10".into(),
                        "4".into(),
                    ],
                ),
                (
                    "category",
                    vec![
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "gambling".into(),
                        "peds".into(),
                        "personal conduct".into(),
                    ],
                ),
                (
                    "year",
                    vec![
                        Value::Int(1989),
                        Value::Int(1995),
                        Value::Int(2014),
                        Value::Int(1983),
                        Value::Int(2014),
                        Value::Int(2014),
                    ],
                ),
            ],
        )
        .unwrap();
        let mut db = Database::new("nfl");
        db.add_table(t);
        db
    }

    fn candidate_batch(db: &Database) -> Vec<SimpleAggregateQuery> {
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let cat = db.resolve("nflsuspensions", "category").unwrap();
        let year = db.resolve("nflsuspensions", "year").unwrap();
        vec![
            SimpleAggregateQuery::count_star(vec![Predicate::new(games, "indef")]),
            SimpleAggregateQuery::count_star(vec![
                Predicate::new(games, "indef"),
                Predicate::new(cat, "gambling"),
            ]),
            SimpleAggregateQuery::count_star(vec![
                Predicate::new(games, "indef"),
                Predicate::new(cat, "substance abuse, repeated offense"),
            ]),
            SimpleAggregateQuery::new(
                AggFunction::Sum,
                AggColumn::Column(year),
                vec![Predicate::new(games, "indef")],
            ),
            SimpleAggregateQuery::new(
                AggFunction::Percentage,
                AggColumn::Star,
                vec![Predicate::new(games, "indef")],
            ),
            SimpleAggregateQuery::new(
                AggFunction::ConditionalProbability,
                AggColumn::Star,
                vec![
                    Predicate::new(games, "indef"),
                    Predicate::new(cat, "gambling"),
                ],
            ),
            SimpleAggregateQuery::new(AggFunction::Avg, AggColumn::Column(year), vec![]),
        ]
    }

    #[test]
    fn merged_results_match_naive_execution() {
        let db = nfl();
        let queries = candidate_batch(&db);
        let plan = MergePlanner::plan(&db, &queries).unwrap();
        let (merged, _) = plan.execute(&db).unwrap();
        for (q, merged_result) in queries.iter().zip(&merged) {
            let naive = execute_query(&db, q).unwrap();
            assert_eq!(*merged_result, naive, "{}", q.to_sql(&db));
        }
    }

    #[test]
    fn merging_reduces_cube_count() {
        let db = nfl();
        let queries = candidate_batch(&db);
        let plan = MergePlanner::plan(&db, &queries).unwrap();
        // 7 queries over 3 distinct predicate-column sets:
        // {games}, {games, category}, {}.
        assert_eq!(plan.cube_count(), 3);
    }

    #[test]
    fn cache_avoids_recomputation_across_runs() {
        let db = nfl();
        let queries = candidate_batch(&db);
        let cache = EvalCache::new();
        let plan = MergePlanner::plan(&db, &queries).unwrap();

        let (r1, s1) = plan.execute_cached(&db, &cache).unwrap();
        assert_eq!(s1.cubes_cached, 0);
        assert!(s1.cubes_executed > 0);

        // Second run (a later EM iteration): everything hits the cache.
        let (r2, s2) = plan.execute_cached(&db, &cache).unwrap();
        assert_eq!(s2.cubes_executed, 0);
        assert_eq!(s2.cubes_cached, plan.cube_count());
        assert_eq!(r1, r2);
    }

    #[test]
    fn cache_shares_slices_between_overlapping_plans() {
        let db = nfl();
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let cache = EvalCache::new();
        let q1 = vec![SimpleAggregateQuery::count_star(vec![Predicate::new(
            games, "indef",
        )])];
        let plan1 = MergePlanner::plan(&db, &q1).unwrap();
        plan1.execute_cached(&db, &cache).unwrap();

        // Same dims, same literal: served from cache.
        let plan2 = MergePlanner::plan(&db, &q1).unwrap();
        let (_, s2) = plan2.execute_cached(&db, &cache).unwrap();
        assert_eq!(s2.cubes_cached, 1);

        // Same dims but a new literal: coverage miss, recomputed.
        let q3 = vec![SimpleAggregateQuery::count_star(vec![Predicate::new(
            games, "10",
        )])];
        let plan3 = MergePlanner::plan(&db, &q3).unwrap();
        let (r3, s3) = plan3.execute_cached(&db, &cache).unwrap();
        assert_eq!(s3.cubes_executed, 1);
        assert_eq!(r3[0], Some(1.0));
    }

    #[test]
    fn invalid_query_fails_planning() {
        let db = nfl();
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let bad = vec![SimpleAggregateQuery::new(
            AggFunction::Sum,
            AggColumn::Column(games), // Sum over a string column
            vec![],
        )];
        assert!(MergePlanner::plan(&db, &bad).is_err());
    }

    #[test]
    fn rows_scanned_reflects_merging_savings() {
        let db = nfl();
        let queries = candidate_batch(&db);
        let plan = MergePlanner::plan(&db, &queries).unwrap();
        let (_, stats) = plan.execute(&db).unwrap();
        // 3 cubes × 6 rows = 18 rows, versus 7 × 6 = 42 rows naively.
        assert_eq!(stats.rows_scanned, 18);
    }
}
