//! Query merging (§6.2): cover many candidate queries with few cubes.
//!
//! Candidate queries for the same claim — and across claims of the same
//! document — are highly similar. The planner groups them by their
//! *predicate column set*: each group becomes one [`CubeQuery`] whose
//! dimensions are those columns, whose relevant literals are the union of
//! the group's predicate values, and whose aggregate list is the union of
//! the group's `(function, column)` pairs. Ratio aggregates (`Percentage`,
//! `ConditionalProbability`) are rewritten into `Count` aggregates and
//! derived from the cube's rollup groups, exactly as footnote 1 of the
//! paper defines them.
//!
//! A plan's cubes are mutually independent, so execution rides the shared
//! wave-orchestration layer ([`crate::schedule::run_requests`]): each cache
//! miss that wins its single-flight claim becomes one cube task, same-scope
//! tasks fuse into one scan pass, the wave runs on up to `threads` scoped
//! workers, and misses that lost the claim block on the winning flight
//! instead of re-executing the cube — concurrent plans over one shared
//! cache compute every cube exactly once.

use crate::aggregate::ratio_from_counts;
use crate::cache::{CachedSlice, EvalCache};
use crate::cube::CubeQuery;
use crate::database::{ColumnRef, Database};
use crate::error::Result;
use crate::query::{AggColumn, AggFunction, SimpleAggregateQuery};
use crate::schedule::{run_requests, TaskBundling, WaveExec, WaveRequest};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// How one input query reads its result out of its cube.
#[derive(Debug, Clone)]
enum LookupKind {
    /// Plain aggregate: read slice `agg` at the query's assignment.
    Direct { agg: usize },
    /// `100 · count(full assignment) / count(all-Any)`.
    Percentage { count_agg: usize },
    /// `100 · count(full assignment) / count(condition dim only)`.
    CondProb {
        count_agg: usize,
        condition_dim: usize,
    },
}

/// One query's pointer into the plan.
#[derive(Debug, Clone)]
struct QueryTarget {
    cube: usize,
    /// Per cube dimension: `Some(value)` if restricted, `None` otherwise.
    assignment: Vec<Option<Value>>,
    kind: LookupKind,
}

/// A planned batch: cubes to execute plus per-query lookups.
#[derive(Debug, Clone)]
pub struct MergePlan {
    cubes: Vec<CubeQuery>,
    targets: Vec<QueryTarget>,
}

/// Execution statistics for one plan run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeStats {
    /// Cube executions actually performed (cache misses).
    pub cubes_executed: usize,
    /// Cubes satisfied without an own execution: resident cache slices,
    /// another thread's in-flight computation, or a mix of both.
    pub cubes_cached: usize,
    /// Real rows read by this run's fused scan passes (each pass charges
    /// its relation length once, however many cubes it feeds).
    pub rows_scanned: u64,
    /// Fused row passes executed (same-scope cubes share one pass).
    pub scan_passes: u64,
    /// Aggregate slices served by joining another thread's in-flight
    /// computation (single-flight) instead of executing a duplicate cube.
    pub singleflight_waits: usize,
}

/// Plans merged evaluation of simple aggregate queries.
pub struct MergePlanner;

impl MergePlanner {
    /// Build a plan covering all `queries`.
    pub fn plan(db: &Database, queries: &[SimpleAggregateQuery]) -> Result<MergePlan> {
        // Group queries by canonical (sorted) predicate column set.
        let mut groups: HashMap<Vec<ColumnRef>, Vec<usize>> = HashMap::new();
        for (i, q) in queries.iter().enumerate() {
            q.validate(db)?;
            let mut dims = q.predicate_columns();
            dims.sort_unstable();
            dims.dedup();
            groups.entry(dims).or_default().push(i);
        }

        let mut cubes: Vec<CubeQuery> = Vec::with_capacity(groups.len());
        let mut targets: Vec<Option<QueryTarget>> = vec![None; queries.len()];

        // Deterministic cube order: sort groups by their dimension key.
        let mut ordered: Vec<(Vec<ColumnRef>, Vec<usize>)> = groups.into_iter().collect();
        ordered.sort_by(|a, b| a.0.cmp(&b.0));

        for (dims, members) in ordered {
            let cube_idx = cubes.len();
            // Union of relevant literals per dimension.
            let mut relevant: Vec<Vec<Value>> = vec![Vec::new(); dims.len()];
            // Union of value aggregates (ratio fns contribute a Count).
            let mut aggregates: Vec<(AggFunction, AggColumn)> = Vec::new();
            let agg_index = |aggs: &mut Vec<(AggFunction, AggColumn)>,
                             f: AggFunction,
                             c: AggColumn| {
                match aggs.iter().position(|(af, ac)| *af == f && *ac == c) {
                    Some(i) => i,
                    None => {
                        aggs.push((f, c));
                        aggs.len() - 1
                    }
                }
            };

            for &qi in &members {
                let q = &queries[qi];
                let mut assignment: Vec<Option<Value>> = vec![None; dims.len()];
                for p in &q.predicates {
                    let d = dims.iter().position(|c| *c == p.column).expect("dim");
                    if !relevant[d].contains(&p.value) {
                        relevant[d].push(p.value.clone());
                    }
                    assignment[d] = Some(p.value.clone());
                }
                let kind = match q.function {
                    AggFunction::Percentage => LookupKind::Percentage {
                        count_agg: agg_index(&mut aggregates, AggFunction::Count, q.column),
                    },
                    AggFunction::ConditionalProbability => {
                        let cond_col = q.predicates[0].column;
                        LookupKind::CondProb {
                            count_agg: agg_index(&mut aggregates, AggFunction::Count, q.column),
                            condition_dim: dims
                                .iter()
                                .position(|c| *c == cond_col)
                                .expect("condition dim"),
                        }
                    }
                    f => LookupKind::Direct {
                        agg: agg_index(&mut aggregates, f, q.column),
                    },
                };
                targets[qi] = Some(QueryTarget {
                    cube: cube_idx,
                    assignment,
                    kind,
                });
            }
            cubes.push(CubeQuery {
                dims,
                relevant,
                aggregates,
            });
        }

        Ok(MergePlan {
            cubes,
            targets: targets.into_iter().map(|t| t.expect("assigned")).collect(),
        })
    }
}

impl MergePlan {
    /// Number of cube queries in the plan.
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Execute without caching. Returns one result per input query.
    pub fn execute(&self, db: &Arc<Database>) -> Result<(Vec<Option<f64>>, MergeStats)> {
        self.execute_inner(db, None, 1)
    }

    /// Execute with a shared cache: cube slices already cached (and covering
    /// the needed literals) are not recomputed, freshly computed slices are
    /// stored for later claims and EM iterations, and misses that lose the
    /// single-flight claim wait for the winning thread's result instead of
    /// executing a duplicate cube.
    pub fn execute_cached(
        &self,
        db: &Arc<Database>,
        cache: &EvalCache,
    ) -> Result<(Vec<Option<f64>>, MergeStats)> {
        self.execute_inner(db, Some(cache), 1)
    }

    /// [`MergePlan::execute_cached`] with the plan's independent cube tasks
    /// spread over up to `threads` scoped workers.
    pub fn execute_cached_with(
        &self,
        db: &Arc<Database>,
        cache: &EvalCache,
        threads: usize,
    ) -> Result<(Vec<Option<f64>>, MergeStats)> {
        self.execute_inner(db, Some(cache), threads)
    }

    fn execute_inner(
        &self,
        db: &Arc<Database>,
        cache: Option<&EvalCache>,
        threads: usize,
    ) -> Result<(Vec<Option<f64>>, MergeStats)> {
        // The probe/bundle/wave/collect protocol lives in one place —
        // `schedule::run_requests` — shared with `core::evaluate`. A plan
        // bundles each cube's missing aggregates into one task (`Wave`
        // bundling) and fuses same-scope tasks into shared scan passes.
        let requests: Vec<WaveRequest<'_>> = self
            .cubes
            .iter()
            .map(|cube| WaveRequest {
                dims: &cube.dims,
                relevant: &cube.relevant,
                aggs: &cube.aggregates,
            })
            .collect();
        let exec = WaveExec {
            cache,
            arena: None,
            scheduler: None,
            threads,
            bundling: TaskBundling::Wave,
            fuse: true,
            partition_blocks: crate::block::DEFAULT_PARTITION_BLOCKS,
        };
        let outcome = run_requests(db, &exec, &requests)?;

        // Counting every fully-served cube as "cached" — resident slices,
        // another thread's in-flight computation, or a mix — keeps
        // cubes_cached + cubes_executed reconciling with the cube count.
        let stats = MergeStats {
            cubes_executed: outcome.stats.tasks_executed as usize,
            cubes_cached: outcome.stats.groups_fully_served as usize,
            rows_scanned: outcome.stats.rows_scanned,
            scan_passes: outcome.stats.scan_passes,
            singleflight_waits: outcome.stats.key_waits as usize,
        };

        // Resolve each query's lookup.
        let results = self
            .targets
            .iter()
            .map(|t| resolve(&outcome.slices[t.cube], t))
            .collect();
        Ok((results, stats))
    }
}

fn resolve(slices: &[CachedSlice], target: &QueryTarget) -> Option<f64> {
    match &target.kind {
        LookupKind::Direct { agg } => slices[*agg].lookup(&target.assignment).ok().flatten(),
        LookupKind::Percentage { count_agg } => {
            let slice = &slices[*count_agg];
            let num = slice.lookup_count(&target.assignment).ok()?;
            let all_any: Vec<Option<Value>> = vec![None; target.assignment.len()];
            let den = slice.lookup_count(&all_any).ok()?;
            ratio_from_counts(num, den)
        }
        LookupKind::CondProb {
            count_agg,
            condition_dim,
        } => {
            let slice = &slices[*count_agg];
            let num = slice.lookup_count(&target.assignment).ok()?;
            let mut cond_only: Vec<Option<Value>> = vec![None; target.assignment.len()];
            cond_only[*condition_dim] = target.assignment[*condition_dim].clone();
            let den = slice.lookup_count(&cond_only).ok()?;
            ratio_from_counts(num, den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_query;
    use crate::query::Predicate;
    use crate::table::Table;

    fn nfl() -> Arc<Database> {
        let t = Table::from_columns(
            "nflsuspensions",
            vec![
                (
                    "games",
                    vec![
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "10".into(),
                        "4".into(),
                    ],
                ),
                (
                    "category",
                    vec![
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "gambling".into(),
                        "peds".into(),
                        "personal conduct".into(),
                    ],
                ),
                (
                    "year",
                    vec![
                        Value::Int(1989),
                        Value::Int(1995),
                        Value::Int(2014),
                        Value::Int(1983),
                        Value::Int(2014),
                        Value::Int(2014),
                    ],
                ),
            ],
        )
        .unwrap();
        let mut db = Database::new("nfl");
        db.add_table(t);
        Arc::new(db)
    }

    fn candidate_batch(db: &Database) -> Vec<SimpleAggregateQuery> {
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let cat = db.resolve("nflsuspensions", "category").unwrap();
        let year = db.resolve("nflsuspensions", "year").unwrap();
        vec![
            SimpleAggregateQuery::count_star(vec![Predicate::new(games, "indef")]),
            SimpleAggregateQuery::count_star(vec![
                Predicate::new(games, "indef"),
                Predicate::new(cat, "gambling"),
            ]),
            SimpleAggregateQuery::count_star(vec![
                Predicate::new(games, "indef"),
                Predicate::new(cat, "substance abuse, repeated offense"),
            ]),
            SimpleAggregateQuery::new(
                AggFunction::Sum,
                AggColumn::Column(year),
                vec![Predicate::new(games, "indef")],
            ),
            SimpleAggregateQuery::new(
                AggFunction::Percentage,
                AggColumn::Star,
                vec![Predicate::new(games, "indef")],
            ),
            SimpleAggregateQuery::new(
                AggFunction::ConditionalProbability,
                AggColumn::Star,
                vec![
                    Predicate::new(games, "indef"),
                    Predicate::new(cat, "gambling"),
                ],
            ),
            SimpleAggregateQuery::new(AggFunction::Avg, AggColumn::Column(year), vec![]),
        ]
    }

    #[test]
    fn merged_results_match_naive_execution() {
        let db = nfl();
        let queries = candidate_batch(&db);
        let plan = MergePlanner::plan(&db, &queries).unwrap();
        let (merged, _) = plan.execute(&db).unwrap();
        for (q, merged_result) in queries.iter().zip(&merged) {
            let naive = execute_query(&db, q).unwrap();
            assert_eq!(*merged_result, naive, "{}", q.to_sql(&db));
        }
    }

    #[test]
    fn merging_reduces_cube_count() {
        let db = nfl();
        let queries = candidate_batch(&db);
        let plan = MergePlanner::plan(&db, &queries).unwrap();
        // 7 queries over 3 distinct predicate-column sets:
        // {games}, {games, category}, {}.
        assert_eq!(plan.cube_count(), 3);
    }

    #[test]
    fn cache_avoids_recomputation_across_runs() {
        let db = nfl();
        let queries = candidate_batch(&db);
        let cache = EvalCache::new();
        let plan = MergePlanner::plan(&db, &queries).unwrap();

        let (r1, s1) = plan.execute_cached(&db, &cache).unwrap();
        assert_eq!(s1.cubes_cached, 0);
        assert!(s1.cubes_executed > 0);

        // Second run (a later EM iteration): everything hits the cache.
        let (r2, s2) = plan.execute_cached(&db, &cache).unwrap();
        assert_eq!(s2.cubes_executed, 0);
        assert_eq!(s2.cubes_cached, plan.cube_count());
        assert_eq!(r1, r2);
    }

    #[test]
    fn cache_shares_slices_between_overlapping_plans() {
        let db = nfl();
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let cache = EvalCache::new();
        let q1 = vec![SimpleAggregateQuery::count_star(vec![Predicate::new(
            games, "indef",
        )])];
        let plan1 = MergePlanner::plan(&db, &q1).unwrap();
        plan1.execute_cached(&db, &cache).unwrap();

        // Same dims, same literal: served from cache.
        let plan2 = MergePlanner::plan(&db, &q1).unwrap();
        let (_, s2) = plan2.execute_cached(&db, &cache).unwrap();
        assert_eq!(s2.cubes_cached, 1);

        // Same dims but a new literal: coverage miss, recomputed.
        let q3 = vec![SimpleAggregateQuery::count_star(vec![Predicate::new(
            games, "10",
        )])];
        let plan3 = MergePlanner::plan(&db, &q3).unwrap();
        let (r3, s3) = plan3.execute_cached(&db, &cache).unwrap();
        assert_eq!(s3.cubes_executed, 1);
        assert_eq!(r3[0], Some(1.0));
    }

    #[test]
    fn parallel_wave_matches_sequential_execution() {
        let db = nfl();
        let queries = candidate_batch(&db);
        let plan = MergePlanner::plan(&db, &queries).unwrap();
        let (sequential, _) = plan.execute(&db).unwrap();
        let cache = EvalCache::new();
        let (parallel, stats) = plan.execute_cached_with(&db, &cache, 4).unwrap();
        assert_eq!(parallel, sequential);
        // Every cube is accounted for exactly once.
        assert_eq!(stats.cubes_executed + stats.cubes_cached, plan.cube_count());
        assert_eq!(stats.cubes_executed, plan.cube_count(), "cold cache");
        // A warm rerun flips every cube to the cached side of the ledger.
        let (rerun, stats) = plan.execute_cached_with(&db, &cache, 4).unwrap();
        assert_eq!(rerun, sequential);
        assert_eq!(stats.cubes_executed, 0);
        assert_eq!(stats.cubes_cached, plan.cube_count());
    }

    /// Two threads executing the same plan against one shared cache:
    /// results match the sequential run, and the combined stats reconcile —
    /// a cube served entirely by the *other* thread's in-flight computation
    /// counts as cached, not as lost.
    #[test]
    fn concurrent_plans_share_executions_and_stats_reconcile() {
        let db = nfl();
        let queries = candidate_batch(&db);
        let plan = MergePlanner::plan(&db, &queries).unwrap();
        let (sequential, _) = plan.execute(&db).unwrap();
        let cache = EvalCache::new();
        let outcomes: Vec<(Vec<Option<f64>>, MergeStats)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let (db, plan, cache) = (&db, &plan, &cache);
                    scope.spawn(move || plan.execute_cached_with(db, cache, 2).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (results, stats) in &outcomes {
            assert_eq!(results, &sequential);
            assert_eq!(
                stats.cubes_executed + stats.cubes_cached,
                plan.cube_count(),
                "every cube is executed, cached, or joined — never lost"
            );
        }
        // Across both threads each cube executed at least once and at most
        // twice (twice only when neither thread could join the other).
        let executed: usize = outcomes.iter().map(|(_, s)| s.cubes_executed).sum();
        assert!(executed >= plan.cube_count());
        assert!(executed <= 2 * plan.cube_count());
    }

    #[test]
    fn invalid_query_fails_planning() {
        let db = nfl();
        let games = db.resolve("nflsuspensions", "games").unwrap();
        let bad = vec![SimpleAggregateQuery::new(
            AggFunction::Sum,
            AggColumn::Column(games), // Sum over a string column
            vec![],
        )];
        assert!(MergePlanner::plan(&db, &bad).is_err());
    }

    #[test]
    fn rows_scanned_reflects_merging_and_fusion_savings() {
        let db = nfl();
        let queries = candidate_batch(&db);
        let plan = MergePlanner::plan(&db, &queries).unwrap();
        let (_, stats) = plan.execute(&db).unwrap();
        // The 3 cubes share one table scope, so they fuse into a single
        // 6-row pass — versus 3 × 6 = 18 rows unfused and 7 × 6 = 42 rows
        // naively.
        assert_eq!(stats.scan_passes, 1);
        assert_eq!(stats.rows_scanned, 6);
    }
}
