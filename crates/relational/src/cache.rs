//! Result caching across claims, EM iterations, and documents (§6.3).
//!
//! The paper indexes *(partial) cube query results by a combination of one
//! aggregation column, one aggregation function, and a set of cube
//! dimensions*. The cached value holds results for **all** literals with
//! non-zero marginal probability anywhere in the document, so different
//! claims (whose relevant-literal subsets overlap heavily), later EM
//! iterations, and other documents of the same batch hit the same entries.
//!
//! # Sharding
//!
//! The cache is **lock-striped**: entries are spread over a power-of-two
//! number of shards by key hash, each shard guarded by its own `RwLock`.
//! Concurrent claim scoring across documents (see
//! `agg_core::pipeline::BatchVerifier`) therefore contends only when two
//! workers touch the *same* shard, instead of serializing on one global
//! lock. Every shard keeps its own lock-free hit/miss/eviction counters;
//! [`EvalCache::stats`] assembles a consistent-enough snapshot without
//! stopping writers.
//!
//! # Single-flight
//!
//! A cache miss is not just a miss: with many workers evaluating claims
//! concurrently, N workers can miss the *same* key at the same time and
//! each execute the same merged cube — the duplicate `rows_scanned` the
//! batched pipeline used to show at 4 workers. [`EvalCache::flight`] closes
//! that hole with a per-key **in-flight table**: the first requester
//! receives a [`FlightGuard`] (the right *and duty* to compute), later
//! requesters whose literal needs are covered by the in-flight computation
//! receive a [`FlightWaiter`] and block on its condition variable until the
//! guard publishes the finished [`CachedSlice`]. A guard dropped without
//! publishing (execution error, panic during unwinding) *poisons* the
//! flight: waiters wake with `None` and retry the probe, so one failed
//! computation never wedges the batch. Requests whose literal sets are not
//! covered by the in-flight computation bypass the latch and compute their
//! own slice — exactly what a warm sequential run would have done.
//!
//! # Versioning & watermarks
//!
//! A cached grid is only as fresh as the data it scanned. Two stamps keep
//! stale grids from ever answering a claim:
//!
//! * **Structural version** — [`CacheKey`] embeds
//!   [`Database::version`](crate::database::Database::version). Structural
//!   mutations (adding tables, `unseal_tables`, new foreign keys) bump it,
//!   so every pre-mutation entry becomes unreachable: a hard invalidation
//!   with no sweep.
//! * **Row watermark** — every [`CachedSlice`] carries the `rows` stamp it
//!   was computed at (the probe-side convention is the database-wide
//!   [`Database::watermark`](crate::database::Database::watermark)). A hit
//!   requires stamp equality; appends move the watermark and silently
//!   retire every older slice.
//!
//! A stale slice is not worthless, though: if its cube captured a
//! [`ScanCheckpoint`], the winning [`FlightGuard`] carries it as a **patch
//! base** ([`FlightGuard::patch_base`]) and the computer patches the grid
//! forward over just the appended rows instead of rescanning the corpus.
//! Patch flights dedup through the same in-flight table as full scans —
//! waiters only join flights targeting *their* watermark.

use crate::cube::{CubeResult, DimSel, ScanCheckpoint};
use crate::database::ColumnRef;
use crate::fxhash::FxHasher;
use crate::query::{AggColumn, AggFunction};
use crate::value::Value;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Cache key: the paper's chosen indexing granularity, plus the database's
/// structural version so mutations hard-invalidate by unreachability.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub function: AggFunction,
    pub column: AggColumn,
    /// Cube dimensions, sorted for canonical form.
    pub dims: Vec<ColumnRef>,
    /// [`Database::version`](crate::database::Database::version) the entry
    /// was (or will be) computed against. A structural mutation bumps the
    /// version, so probes simply stop finding pre-mutation entries.
    pub version: u64,
}

impl CacheKey {
    pub fn new(
        function: AggFunction,
        column: AggColumn,
        mut dims: Vec<ColumnRef>,
        version: u64,
    ) -> Self {
        dims.sort_unstable();
        Self {
            function,
            column,
            dims,
            version,
        }
    }
}

/// One aggregate's view of a cube result.
#[derive(Debug, Clone)]
pub struct CachedSlice {
    cube: Arc<CubeResult>,
    agg_idx: usize,
    /// Whether absent groups should read as 0 (count-like aggregates).
    count_like: bool,
    /// Watermark stamp: the caller-defined row count this grid is current
    /// at (by convention the database-wide watermark). Probes hit only on
    /// stamp equality; see the module docs.
    rows: u64,
}

impl CachedSlice {
    pub fn new(cube: Arc<CubeResult>, agg_idx: usize, function: AggFunction, rows: u64) -> Self {
        Self {
            cube,
            agg_idx,
            count_like: matches!(function, AggFunction::Count | AggFunction::CountDistinct),
            rows,
        }
    }

    /// The watermark stamp this slice is current at.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The resumable scan prefix of the underlying cube, if it captured one
    /// — what lets a stale slice seed an incremental re-verify.
    pub fn checkpoint(&self) -> Option<&Arc<ScanCheckpoint>> {
        self.cube.checkpoint()
    }

    /// Dimensions of the underlying cube (in cube order).
    pub fn dims(&self) -> &[ColumnRef] {
        self.cube.dims()
    }

    /// The relevant literals this slice was built over, per dimension.
    pub fn relevant(&self) -> &[Vec<Value>] {
        self.cube.relevant()
    }

    /// Does this slice contain every literal in `needed` (per dimension,
    /// aligned with the cube's dimension order)?
    pub fn covers(&self, needed: &[Vec<Value>]) -> bool {
        if needed.len() != self.cube.dims().len() {
            return false;
        }
        needed.iter().enumerate().all(|(dim, lits)| {
            lits.iter()
                .all(|lit| self.cube.literal_index(dim, lit).is_some())
        })
    }

    /// Look up the aggregate for an assignment expressed as *values*
    /// (`None` = dimension unrestricted), aligned with [`Self::dims`].
    ///
    /// Returns `Ok(aggregate)` where the inner `Option` is SQL NULL, or
    /// `Err(())` when some literal is unknown to this slice (a cache-coverage
    /// violation — the caller should treat it as a miss).
    // The unit error deliberately carries no payload: callers translate it
    // straight into a cache miss.
    #[allow(clippy::result_unit_err)]
    pub fn lookup(&self, assignment: &[Option<Value>]) -> Result<Option<f64>, ()> {
        let sel = self.selectors(assignment)?;
        if self.count_like {
            Ok(Some(self.cube.get_count(&sel, self.agg_idx)))
        } else {
            Ok(self.cube.get(&sel, self.agg_idx))
        }
    }

    /// Count-semantics lookup (absent group = 0), regardless of the slice's
    /// aggregate kind. Only meaningful for count slices.
    #[allow(clippy::result_unit_err)]
    pub fn lookup_count(&self, assignment: &[Option<Value>]) -> Result<f64, ()> {
        let sel = self.selectors(assignment)?;
        Ok(self.cube.get_count(&sel, self.agg_idx))
    }

    fn selectors(&self, assignment: &[Option<Value>]) -> Result<Vec<DimSel>, ()> {
        if assignment.len() != self.cube.dims().len() {
            return Err(());
        }
        assignment
            .iter()
            .enumerate()
            .map(|(dim, v)| match v {
                None => Ok(DimSel::Any),
                Some(value) => {
                    // A literal that was requested as relevant but does not
                    // occur in the column has no index *only if* it was not
                    // part of the cube's relevant list; requested literals
                    // are always listed, so a miss here means the cache entry
                    // was built for a different literal set.
                    self.cube
                        .literal_index(dim, value)
                        .map(DimSel::Literal)
                        .ok_or(())
                }
            })
            .collect()
    }
}

/// One shard's counter snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries displaced: replaced by a `put` for an existing key, or
    /// dropped by [`EvalCache::clear`].
    pub evictions: u64,
    /// Entries currently resident in the shard.
    pub entries: u64,
    /// Misses that joined another requester's in-flight computation via
    /// [`EvalCache::flight`] instead of executing their own cube.
    pub singleflight_waits: u64,
    /// Waiters woken by a poisoned flight who re-probed this shard's keys
    /// (each retry is bounded by the wave layer's retry budget).
    pub poison_retries: u64,
}

/// A point-in-time snapshot of the whole cache's counters, per shard.
/// Counters are read with relaxed atomics while writers keep going, so
/// totals are exact only in quiescence — good enough for the experiment
/// harness and the CI bench instrumentation.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    pub shards: Vec<ShardStats>,
}

impl CacheStats {
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.hits).sum()
    }

    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.misses).sum()
    }

    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.evictions).sum()
    }

    pub fn entries(&self) -> u64 {
        self.shards.iter().map(|s| s.entries).sum()
    }

    pub fn singleflight_waits(&self) -> u64 {
        self.shards.iter().map(|s| s.singleflight_waits).sum()
    }

    pub fn poison_retries(&self) -> u64 {
        self.shards.iter().map(|s| s.poison_retries).sum()
    }

    /// Fraction of lookups served from resident slices. 0.0 (not NaN) when
    /// there have been no lookups at all.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Fraction of misses that were absorbed by single-flight instead of
    /// executing a duplicate cube. 0.0 (not NaN) when there were no misses.
    pub fn dedup_rate(&self) -> f64 {
        let m = self.misses() as f64;
        if m == 0.0 {
            0.0
        } else {
            self.singleflight_waits() as f64 / m
        }
    }
}

/// Slices retained per key: enough that a batch of documents with
/// different (overlapping, non-nested) literal sets can coexist without
/// evicting each other, small enough to bound memory per key.
pub const SLICES_PER_KEY: usize = 4;

/// One lock stripe: its own map plus lock-free counters. Each key holds up
/// to [`SLICES_PER_KEY`] slices with distinct literal coverage.
#[derive(Debug, Default)]
struct Shard {
    entries: RwLock<HashMap<CacheKey, Vec<CachedSlice>>>,
    /// In-flight computations for keys of this shard (single-flight). A key
    /// may carry several flights with non-nested literal coverage, exactly
    /// like resident slices.
    inflight: StdMutex<HashMap<CacheKey, Vec<Arc<InFlight>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    singleflight_waits: AtomicU64,
    poison_retries: AtomicU64,
}

impl Shard {
    fn snapshot(&self) -> ShardStats {
        ShardStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.read().values().map(|v| v.len() as u64).sum(),
            singleflight_waits: self.singleflight_waits.load(Ordering::Relaxed),
            poison_retries: self.poison_retries.load(Ordering::Relaxed),
        }
    }

    /// Find a resident slice covering `needed` at exactly watermark `rows`,
    /// without touching counters.
    fn lookup(&self, key: &CacheKey, needed: &[Vec<Value>], rows: u64) -> Option<CachedSlice> {
        self.entries
            .read()
            .get(key)
            .and_then(|slices| slices.iter().find(|s| s.rows == rows && s.covers(needed)))
            .cloned()
    }

    /// The best patch base for a probe at watermark `rows`: the checkpoint
    /// with the longest stable prefix among stale covering slices. `None`
    /// means the computer must cold-scan.
    fn patch_base(
        &self,
        key: &CacheKey,
        needed: &[Vec<Value>],
        rows: u64,
    ) -> Option<Arc<ScanCheckpoint>> {
        self.entries
            .read()
            .get(key)?
            .iter()
            .filter(|s| s.rows < rows && s.covers(needed))
            .filter_map(|s| s.cube.checkpoint())
            .max_by_key(|cp| cp.rows())
            .cloned()
    }
}

// ---------------------------------------------------------------------------
// Single-flight
// ---------------------------------------------------------------------------

/// Does `have` (one literal list per dimension) include every literal of
/// `needed`? The flight-table analogue of [`CachedSlice::covers`].
fn covers(have: &[Vec<Value>], needed: &[Vec<Value>]) -> bool {
    have.len() == needed.len()
        && needed
            .iter()
            .zip(have)
            .all(|(n, h)| n.iter().all(|lit| h.contains(lit)))
}

#[derive(Debug)]
enum FlightState {
    /// The owning [`FlightGuard`] is still computing.
    Pending,
    /// The computation finished; waiters take the slice.
    Done(CachedSlice),
    /// The guard was dropped without publishing — waiters must retry.
    Poisoned,
}

/// One in-flight computation: the literal coverage it will publish, plus a
/// latch waiters block on. Uses `std::sync` directly because the offline
/// `parking_lot` shim has no condition variable.
#[derive(Debug)]
struct InFlight {
    relevant: Vec<Vec<Value>>,
    /// Watermark the computation targets: probes at a different watermark
    /// must not join (they would read a grid for the wrong snapshot).
    rows: u64,
    state: StdMutex<FlightState>,
    cv: Condvar,
}

impl InFlight {
    fn settle(&self, state: FlightState) {
        *self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = state;
        self.cv.notify_all();
    }
}

/// One cube's keys plus the literal coverage they need, for the atomic
/// multi-cube probe [`EvalCache::flight_batch_many`].
#[derive(Debug)]
pub struct FlightRequest<'a> {
    /// The cube's cache keys (one per aggregate).
    pub keys: &'a [CacheKey],
    /// Relevant literals per dimension — one coverage for the whole cube.
    pub needed: &'a [Vec<Value>],
    /// Watermark the requester's snapshot is pinned at; hits, joins, and
    /// published slices all match on it exactly.
    pub rows: u64,
}

/// The outcome of a single-flight probe ([`EvalCache::flight`]).
#[derive(Debug)]
pub enum Flight {
    /// A resident slice already covers the request.
    Hit(CachedSlice),
    /// The caller won the right — and the duty — to compute this key.
    /// [`FlightGuard::fulfill`] publishes the slice to the cache and to
    /// every waiter; dropping the guard unpublished poisons the flight.
    Compute(FlightGuard),
    /// Another thread is computing a slice covering this request; block on
    /// [`FlightWaiter::wait`] for it.
    Wait(FlightWaiter),
}

/// Exclusive right to compute one cache key (see [`Flight::Compute`]).
#[derive(Debug)]
pub struct FlightGuard {
    cache: EvalCache,
    key: CacheKey,
    flight: Arc<InFlight>,
    fulfilled: bool,
    /// A stale resident grid's checkpoint covering this flight's literals,
    /// when one exists: the computer may patch forward from it instead of
    /// cold-scanning ([`crate::cube::execute_patch_in`]).
    patch: Option<Arc<ScanCheckpoint>>,
}

impl FlightGuard {
    pub fn key(&self) -> &CacheKey {
        &self.key
    }

    /// The literal coverage this flight promised (the `needed` sets of the
    /// original probe); the published slice must cover it.
    pub fn relevant(&self) -> &[Vec<Value>] {
        &self.flight.relevant
    }

    /// The watermark this flight promised to compute at.
    pub fn rows(&self) -> u64 {
        self.flight.rows
    }

    /// Checkpointed prefix of a stale resident grid with the same coverage,
    /// if the probe found one — the delta-patching fast path.
    pub fn patch_base(&self) -> Option<&Arc<ScanCheckpoint>> {
        self.patch.as_ref()
    }

    /// Publish the computed slice: store it in the cache, hand it to every
    /// waiter, and retire the flight.
    pub fn fulfill(mut self, slice: CachedSlice) {
        debug_assert!(
            slice.covers(&self.flight.relevant),
            "published slice must cover the flight's promised literals"
        );
        debug_assert_eq!(
            slice.rows, self.flight.rows,
            "published slice must carry the flight's promised watermark"
        );
        self.cache.put(self.key.clone(), slice.clone());
        self.retire();
        self.flight.settle(FlightState::Done(slice));
    }

    /// Remove this flight from the shard's in-flight table.
    fn retire(&mut self) {
        self.fulfilled = true;
        let shard = &self.cache.inner.shards[self.cache.shard_of(&self.key)];
        let mut inflight = shard
            .inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(flights) = inflight.get_mut(&self.key) {
            flights.retain(|f| !Arc::ptr_eq(f, &self.flight));
            if flights.is_empty() {
                inflight.remove(&self.key);
            }
        }
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if !self.fulfilled {
            // Computation abandoned (error or unwinding): poison so waiters
            // wake up and retry instead of blocking forever.
            self.retire();
            self.flight.settle(FlightState::Poisoned);
        }
    }
}

/// Handle to another thread's in-flight computation (see [`Flight::Wait`]).
#[derive(Debug)]
pub struct FlightWaiter {
    flight: Arc<InFlight>,
}

impl FlightWaiter {
    /// Block until the computing thread settles the flight. Returns the
    /// published slice, or `None` when the flight was poisoned — re-probe
    /// with [`EvalCache::flight`] and compute if the retry wins the guard.
    pub fn wait(self) -> Option<CachedSlice> {
        let mut state = self
            .flight
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            match &*state {
                FlightState::Pending => {
                    state = self
                        .flight
                        .cv
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                FlightState::Done(slice) => return Some(slice.clone()),
                FlightState::Poisoned => return None,
            }
        }
    }
}

/// Default shard count: enough stripes that a worker pool the size of any
/// reasonable machine rarely collides, while keeping the per-cache memory
/// footprint trivial.
pub const DEFAULT_CACHE_SHARDS: usize = 16;

/// The shared evaluation cache. Cloning shares the underlying storage.
#[derive(Debug, Clone)]
pub struct EvalCache {
    inner: Arc<EvalCacheInner>,
}

#[derive(Debug)]
struct EvalCacheInner {
    shards: Box<[Shard]>,
    /// Serializes multi-key probes ([`EvalCache::flight_batch`]) so the
    /// keys of one cube are claimed atomically — two workers can never
    /// split one cube's aggregate set into two executions by interleaving
    /// their claims. Held only while probing (never while computing), so
    /// contention is a few map lookups.
    planning: StdMutex<()>,
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::with_shards(DEFAULT_CACHE_SHARDS)
    }
}

impl EvalCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache with at least `shards` lock stripes (rounded up to the next
    /// power of two so shard selection is a mask, never a division).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        EvalCache {
            inner: Arc::new(EvalCacheInner {
                shards: (0..n).map(|_| Shard::default()).collect(),
                planning: StdMutex::new(()),
            }),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard a key maps to: the key's FxHash folded to mix both
    /// halves, masked to the power-of-two shard count. Within-shard bucket
    /// placement cannot correlate with shard choice regardless — the
    /// per-shard `HashMap` hashes keys with its own hasher (SipHash).
    pub fn shard_of(&self, key: &CacheKey) -> usize {
        let mut hasher = FxHasher::default();
        key.hash(&mut hasher);
        let h = hasher.finish();
        ((h >> 32) as usize ^ h as usize) & (self.inner.shards.len() - 1)
    }

    /// Fetch a slice covering `needed` literals at exactly watermark
    /// `rows`, counting a hit or miss. A stale-stamped slice never hits —
    /// that is the whole point of the stamp.
    pub fn get(&self, key: &CacheKey, needed: &[Vec<Value>], rows: u64) -> Option<CachedSlice> {
        let shard = &self.inner.shards[self.shard_of(key)];
        match shard.lookup(key, needed, rows) {
            Some(slice) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some(slice)
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Single-flight probe: fetch a covering slice, join a covering
    /// in-flight computation, or win the right to compute the key.
    ///
    /// Counts one hit ([`Flight::Hit`]) or one miss ([`Flight::Compute`] /
    /// [`Flight::Wait`]); a wait additionally bumps
    /// [`ShardStats::singleflight_waits`]. An in-flight computation is only
    /// joined when its promised literal coverage includes `needed`;
    /// otherwise the caller computes its own slice, exactly as a warm
    /// sequential run would have.
    pub fn flight(&self, key: &CacheKey, needed: &[Vec<Value>], rows: u64) -> Flight {
        let shard = &self.inner.shards[self.shard_of(key)];
        if let Some(slice) = shard.lookup(key, needed, rows) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return Flight::Hit(slice);
        }
        let mut inflight = shard
            .inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Re-check residency under the in-flight lock: a computer may have
        // published (and retired its flight) between the read above and
        // this lock — without the re-check we would register a flight no
        // one else can see progress on.
        if let Some(slice) = shard.lookup(key, needed, rows) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return Flight::Hit(slice);
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(flight) = inflight.get(key).and_then(|flights| {
            flights
                .iter()
                .find(|f| f.rows == rows && covers(&f.relevant, needed))
        }) {
            shard.singleflight_waits.fetch_add(1, Ordering::Relaxed);
            return Flight::Wait(FlightWaiter {
                flight: flight.clone(),
            });
        }
        #[cfg(any(test, feature = "chaos"))]
        if crate::chaos::inject_flight_poison() {
            // Hand out a dead-on-arrival flight instead of a compute right:
            // it is never registered in the in-flight table (so it cannot
            // leak), and its waiter wakes immediately with `None`,
            // exercising the caller's bounded poison-retry path.
            return Flight::Wait(FlightWaiter {
                flight: Arc::new(InFlight {
                    relevant: needed.to_vec(),
                    rows,
                    state: StdMutex::new(FlightState::Poisoned),
                    cv: Condvar::new(),
                }),
            });
        }
        let flight = Arc::new(InFlight {
            relevant: needed.to_vec(),
            rows,
            state: StdMutex::new(FlightState::Pending),
            cv: Condvar::new(),
        });
        inflight
            .entry(key.clone())
            .or_default()
            .push(flight.clone());
        Flight::Compute(FlightGuard {
            cache: self.clone(),
            key: key.clone(),
            flight,
            fulfilled: false,
            // A stale covering grid's checkpoint, when resident: the duty
            // to compute shrinks to a scan of the appended rows.
            patch: shard.patch_base(key, needed, rows),
        })
    }

    /// [`EvalCache::flight`] for every key of one cube, atomically: the
    /// whole probe runs under the cache's planning lock, so concurrent
    /// requesters of the same cube either win *all* of its unserved keys
    /// or wait/hit on *all* of them — the aggregate set of one cube can
    /// never be split across two executions by claim interleaving. All
    /// keys share `needed` (one cube has one literal coverage).
    pub fn flight_batch(&self, keys: &[CacheKey], needed: &[Vec<Value>], rows: u64) -> Vec<Flight> {
        let mut out =
            self.flight_batch_many(std::slice::from_ref(&FlightRequest { keys, needed, rows }));
        out.pop().expect("one flight set per request")
    }

    /// [`EvalCache::flight_batch`] for **several cubes in one atomic
    /// probe**: every key of every request is claimed under a single
    /// planning-lock hold. A whole scheduling wave (all cube groups of one
    /// document iteration) probes through this, so two workers racing the
    /// same wave content can never split one wave's miss set between them
    /// — whoever enters the planning lock first wins *every* key both
    /// would have missed. That all-or-nothing claim is what makes fused
    /// scan-pass formation (and therefore the pipeline's `scan_passes` /
    /// `rows_scanned` counters) independent of worker interleaving.
    pub fn flight_batch_many(&self, requests: &[FlightRequest<'_>]) -> Vec<Vec<Flight>> {
        let _planning = self
            .inner
            .planning
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        requests
            .iter()
            .map(|request| {
                request
                    .keys
                    .iter()
                    .map(|key| self.flight(key, request.needed, request.rows))
                    .collect()
            })
            .collect()
    }

    /// Store a slice. Coverage-preserving *within a watermark*: a resident
    /// slice at the same stamp that already covers the newcomer's literals
    /// makes the put a no-op, resident slices the newcomer covers at the
    /// same or an older stamp are displaced by it, and slices with
    /// *overlapping but non-nested* coverage coexist (up to
    /// [`SLICES_PER_KEY`]; beyond that eviction prefers stale-stamped
    /// slices, then the oldest) — so a batch of documents with different
    /// literal sets never ping-pongs one key. Newer-stamped residents are
    /// never displaced: a racing append's publish must win. Every displaced
    /// slice counts as an eviction.
    pub fn put(&self, key: CacheKey, slice: CachedSlice) {
        let shard = &self.inner.shards[self.shard_of(&key)];
        let mut entries = shard.entries.write();
        let slices = entries.entry(key).or_default();
        if slices
            .iter()
            .any(|s| s.rows == slice.rows && s.covers(slice.relevant()))
        {
            return;
        }
        let before = slices.len();
        slices.retain(|s| !(s.rows <= slice.rows && slice.covers(s.relevant())));
        let mut evicted = (before - slices.len()) as u64;
        slices.push(slice);
        if slices.len() > SLICES_PER_KEY {
            let newest = slices.iter().map(|s| s.rows).max().unwrap_or(0);
            let idx = slices.iter().position(|s| s.rows < newest).unwrap_or(0);
            slices.remove(idx);
            evicted += 1;
        }
        if evicted > 0 {
            shard.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Number of computations currently in flight across all shards.
    ///
    /// Flights are how concurrent *waves* — including waves of different
    /// documents arriving at different times in a streaming run — share
    /// one physical cube execution: a later wave whose literal needs are
    /// covered joins the earlier wave's flight instead of scanning again.
    /// Quiescent services must read 0 here: every flight is retired on
    /// fulfillment and poisoned on abandonment, so a non-zero count after
    /// a drained shutdown means a guard leaked (a waiter would block
    /// forever on it). The streaming stress tests assert this invariant.
    pub fn inflight_len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| {
                s.inflight
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Record one poisoned-flight retry against `key`'s shard (see
    /// [`ShardStats::poison_retries`]). The wave layer calls this each
    /// time a waiter wakes from a poisoned flight and re-probes.
    pub fn note_poison_retry(&self, key: &CacheKey) {
        self.inner.shards[self.shard_of(key)]
            .poison_retries
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot all shard counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            shards: self.inner.shards.iter().map(Shard::snapshot).collect(),
        }
    }

    /// Total resident slices (keys may hold several, see [`EvalCache::put`]).
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.entries.read().values().map(Vec::len).sum::<usize>())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries (e.g. between unrelated databases). Dropped slices
    /// count as evictions.
    pub fn clear(&self) {
        for shard in self.inner.shards.iter() {
            let mut entries = shard.entries.write();
            let dropped: u64 = entries.values().map(|v| v.len() as u64).sum();
            entries.clear();
            shard.evictions.fetch_add(dropped, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeQuery;
    use crate::database::Database;
    use crate::table::Table;

    fn db() -> Database {
        let t = Table::from_columns(
            "t",
            vec![("cat", vec!["a".into(), "a".into(), "b".into(), "c".into()])],
        )
        .unwrap();
        let mut db = Database::new("d");
        db.add_table(t);
        db
    }

    fn slice(db: &Database, literals: Vec<Value>) -> CachedSlice {
        let cat = db.resolve("t", "cat").unwrap();
        let cube = CubeQuery {
            dims: vec![cat],
            relevant: vec![literals],
            aggregates: vec![(AggFunction::Count, AggColumn::Star)],
        }
        .execute(db)
        .unwrap();
        CachedSlice::new(Arc::new(cube), 0, AggFunction::Count, db.watermark())
    }

    #[test]
    fn slice_lookup_by_value() {
        let db = db();
        let s = slice(&db, vec!["a".into(), "b".into()]);
        assert_eq!(s.lookup(&[Some("a".into())]), Ok(Some(2.0)));
        assert_eq!(s.lookup(&[Some("b".into())]), Ok(Some(1.0)));
        assert_eq!(s.lookup(&[None]), Ok(Some(4.0)));
        // "c" was not in the relevant set: coverage violation.
        assert_eq!(s.lookup(&[Some("c".into())]), Err(()));
    }

    #[test]
    fn coverage_check() {
        let db = db();
        let s = slice(&db, vec!["a".into(), "b".into()]);
        assert!(s.covers(&[vec!["a".into()]]));
        assert!(s.covers(&[vec!["a".into(), "b".into()]]));
        assert!(!s.covers(&[vec!["c".into()]]));
        assert!(!s.covers(&[vec![], vec![]]), "dimension count must match");
    }

    #[test]
    fn cache_hits_and_misses() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        let key = CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat], 0);
        let needed = vec![vec![Value::from("a")]];

        assert!(cache.get(&key, &needed, 4).is_none());
        assert_eq!(cache.stats().misses(), 1);

        cache.put(key.clone(), slice(&db, vec!["a".into()]));
        assert!(cache.get(&key, &needed, 4).is_some());
        assert_eq!(cache.stats().hits(), 1);

        // A broader literal set than cached is a miss (coverage).
        let broader = vec![vec![Value::from("a"), Value::from("c")]];
        assert!(cache.get(&key, &broader, 4).is_none());
        assert_eq!(cache.stats().misses(), 2);
        assert!(cache.stats().hit_rate() > 0.3 && cache.stats().hit_rate() < 0.4);
    }

    #[test]
    fn cache_key_canonicalizes_dimension_order() {
        let a = ColumnRef::new(0, 1);
        let b = ColumnRef::new(0, 2);
        let k1 = CacheKey::new(AggFunction::Count, AggColumn::Star, vec![a, b], 0);
        let k2 = CacheKey::new(AggFunction::Count, AggColumn::Star, vec![b, a], 0);
        assert_eq!(k1, k2);
    }

    #[test]
    fn clear_empties_cache() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        cache.put(
            CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat], 0),
            slice(&db, vec!["a".into()]),
        );
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_clones_see_the_same_entries() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        let clone = cache.clone();
        clone.put(
            CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat], 0),
            slice(&db, vec!["a".into()]),
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn overlapping_literal_sets_coexist_without_ping_pong() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        let key = CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat], 0);
        let ab = vec![vec![Value::from("a"), Value::from("b")]];
        let bc = vec![vec![Value::from("b"), Value::from("c")]];
        cache.put(key.clone(), slice(&db, vec!["a".into(), "b".into()]));
        // A narrower put is a no-op: the resident slice already covers it.
        cache.put(key.clone(), slice(&db, vec!["a".into()]));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions(), 0);
        // Overlapping-but-not-nested coverage coexists (doc A wants {a,b},
        // doc B wants {b,c}): neither slice evicts the other, and both
        // documents keep hitting.
        cache.put(key.clone(), slice(&db, vec!["b".into(), "c".into()]));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key, &ab, 4).is_some());
        assert!(cache.get(&key, &bc, 4).is_some());
        assert_eq!(cache.stats().evictions(), 0);
        // A slice covering a resident one displaces it.
        cache.put(
            key.clone(),
            slice(&db, vec!["a".into(), "b".into(), "c".into()]),
        );
        assert_eq!(cache.len(), 1, "superset slice replaces both");
        assert_eq!(cache.stats().evictions(), 2);
        assert!(cache.get(&key, &ab, 4).is_some());
        assert!(cache.get(&key, &bc, 4).is_some());
    }

    #[test]
    fn slices_per_key_is_bounded() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        let key = CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat], 0);
        // Disjoint singleton literal sets: none covers another, so they
        // accumulate until the per-key cap evicts the oldest.
        let lits = ["a", "b", "c", "l-d", "l-e", "l-f"];
        for lit in lits {
            cache.put(key.clone(), slice(&db, vec![lit.into()]));
        }
        assert_eq!(cache.len(), SLICES_PER_KEY);
        assert_eq!(
            cache.stats().evictions(),
            (lits.len() - SLICES_PER_KEY) as u64
        );
        // The newest survives, the oldest is gone.
        assert!(cache.get(&key, &[vec![Value::from("l-f")]], 4).is_some());
        assert!(cache.get(&key, &[vec![Value::from("a")]], 4).is_none());
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(EvalCache::with_shards(0).shard_count(), 1);
        assert_eq!(EvalCache::with_shards(1).shard_count(), 1);
        assert_eq!(EvalCache::with_shards(5).shard_count(), 8);
        assert_eq!(EvalCache::with_shards(16).shard_count(), 16);
        assert_eq!(EvalCache::new().shard_count(), DEFAULT_CACHE_SHARDS);
    }

    #[test]
    fn replacement_and_clear_count_as_evictions() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        let key = CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat], 0);
        cache.put(key.clone(), slice(&db, vec!["a".into()]));
        assert_eq!(cache.stats().evictions(), 0);
        cache.put(key.clone(), slice(&db, vec!["a".into(), "b".into()]));
        assert_eq!(cache.stats().evictions(), 1);
        cache.clear();
        assert_eq!(cache.stats().evictions(), 2);
        assert_eq!(cache.stats().entries(), 0);
    }

    /// Uniformly drawn keys must spread evenly: no shard may hold more than
    /// twice the mean entry count.
    #[test]
    fn uniform_keys_spread_across_shards() {
        let db = db();
        let cache = EvalCache::with_shards(16);
        let s = slice(&db, vec!["a".into()]);
        let n_keys = 4096usize;
        for i in 0..n_keys {
            // Distinct dimension sets give distinct, uniform-ish keys.
            let dims = vec![ColumnRef::new(i / 64, i % 64)];
            cache.put(
                CacheKey::new(AggFunction::Count, AggColumn::Star, dims, 0),
                s.clone(),
            );
        }
        assert_eq!(cache.len(), n_keys);
        let stats = cache.stats();
        let mean = n_keys as f64 / cache.shard_count() as f64;
        for (i, shard) in stats.shards.iter().enumerate() {
            assert!(
                (shard.entries as f64) <= 2.0 * mean,
                "shard {i} holds {} entries, mean is {mean:.1}",
                shard.entries
            );
        }
    }

    #[test]
    fn hit_rate_is_zero_not_nan_without_lookups() {
        let stats = EvalCache::new().stats();
        assert_eq!(stats.hits(), 0);
        assert_eq!(stats.misses(), 0);
        assert_eq!(stats.hit_rate(), 0.0, "no lookups must read 0.0, not NaN");
        assert_eq!(stats.dedup_rate(), 0.0, "no misses must read 0.0, not NaN");
        assert!(stats.hit_rate().is_finite());
        assert!(stats.dedup_rate().is_finite());
    }

    #[test]
    fn flight_hit_compute_and_publish() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        let key = CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat], 0);
        let needed = vec![vec![Value::from("a")]];

        let guard = match cache.flight(&key, &needed, 4) {
            Flight::Compute(g) => g,
            other => panic!("first probe must win the flight, got {other:?}"),
        };
        assert_eq!(guard.key(), &key);
        assert_eq!(guard.relevant(), &needed[..]);
        // A second probe from the same literal set joins the flight.
        let waiter = match cache.flight(&key, &needed, 4) {
            Flight::Wait(w) => w,
            other => panic!("second probe must wait, got {other:?}"),
        };
        // A probe needing literals the flight does not cover computes its
        // own slice instead of joining.
        let broader = vec![vec![Value::from("a"), Value::from("b")]];
        let own = match cache.flight(&key, &broader, 4) {
            Flight::Compute(g) => g,
            other => panic!("non-covered probe must compute, got {other:?}"),
        };
        drop(own); // poisoned, nobody waits on it

        guard.fulfill(slice(&db, vec!["a".into()]));
        assert_eq!(
            waiter.wait().unwrap().lookup(&[Some("a".into())]),
            Ok(Some(2.0))
        );
        // The published slice is resident: later probes are plain hits.
        assert!(matches!(cache.flight(&key, &needed, 4), Flight::Hit(_)));
        let stats = cache.stats();
        assert_eq!(stats.singleflight_waits(), 1);
        assert_eq!(stats.hits(), 1);
        assert_eq!(stats.misses(), 3);
    }

    /// 8 threads hammering one key: the first claims the flight while the
    /// other 7 deterministically join it (the guard is held until every
    /// waiter has registered), so the cube is computed exactly once.
    #[test]
    fn single_flight_executes_once_under_contention() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        let key = CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat], 0);
        let needed = vec![vec![Value::from("a")]];
        let waiters = 7usize;

        // Phase 1: the main thread wins the flight and holds it.
        let guard = match cache.flight(&key, &needed, 4) {
            Flight::Compute(g) => g,
            other => panic!("expected to win the flight, got {other:?}"),
        };

        let results: Vec<Option<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..waiters)
                .map(|_| {
                    let cache = cache.clone();
                    let (key, needed) = (&key, &needed);
                    scope.spawn(move || {
                        // Phase 2: with the guard held, every probe must
                        // become a waiter — no hit, no second computer.
                        let w = match cache.flight(key, needed, 4) {
                            Flight::Wait(w) => w,
                            other => panic!("expected Wait, got {other:?}"),
                        };
                        w.wait()
                            .expect("flight fulfilled")
                            .lookup(&[Some("a".into())])
                            .unwrap()
                    })
                })
                .collect();
            // Phase 3: all waiters registered (counted); publish once.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            while cache.stats().singleflight_waits() < waiters as u64 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "waiters never registered"
                );
                std::thread::yield_now();
            }
            guard.fulfill(slice(&db, vec!["a".into()]));
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Every waiter read the one published slice, bit-identically.
        assert!(results.iter().all(|r| *r == Some(2.0)));
        let stats = cache.stats();
        assert_eq!(stats.singleflight_waits(), waiters as u64);
        assert_eq!(stats.misses(), 1 + waiters as u64, "one computer, 7 waits");
        assert_eq!(stats.entries(), 1, "the cube was computed exactly once");
    }

    /// A multi-cube probe claims every unserved key of every request in
    /// one atomic step: a second prober of the same two cubes can win
    /// nothing — it waits on all of them.
    #[test]
    fn flight_batch_many_claims_whole_waves_atomically() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        let needed_a = vec![vec![Value::from("a")]];
        let needed_b = vec![vec![Value::from("b")]];
        let count_keys = [CacheKey::new(
            AggFunction::Count,
            AggColumn::Star,
            vec![cat],
            0,
        )];
        let distinct_keys = [CacheKey::new(
            AggFunction::CountDistinct,
            AggColumn::Star,
            vec![cat],
            0,
        )];
        let requests = [
            FlightRequest {
                keys: &count_keys,
                needed: &needed_a,
                rows: 4,
            },
            FlightRequest {
                keys: &distinct_keys,
                needed: &needed_b,
                rows: 4,
            },
        ];
        let first = cache.flight_batch_many(&requests);
        let guards: Vec<FlightGuard> = first
            .into_iter()
            .flatten()
            .map(|f| match f {
                Flight::Compute(g) => g,
                other => panic!("first prober must win every key, got {other:?}"),
            })
            .collect();
        let second = cache.flight_batch_many(&requests);
        let waiters: Vec<FlightWaiter> = second
            .into_iter()
            .flatten()
            .map(|f| match f {
                Flight::Wait(w) => w,
                other => panic!("second prober must wait on every key, got {other:?}"),
            })
            .collect();
        for guard in guards {
            guard.fulfill(slice(&db, vec!["a".into(), "b".into()]));
        }
        for waiter in waiters {
            assert!(waiter.wait().is_some());
        }
    }

    /// The in-flight table registers a flight when a guard is won and
    /// retires it on fulfillment *and* on abandonment — a quiescent cache
    /// always reads 0, the invariant streaming shutdown relies on.
    #[test]
    fn inflight_len_tracks_registration_and_retirement() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        let key_a = CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat], 0);
        let key_b = CacheKey::new(AggFunction::CountDistinct, AggColumn::Star, vec![cat], 0);
        let needed = vec![vec![Value::from("a")]];
        assert_eq!(cache.inflight_len(), 0);
        let guard_a = match cache.flight(&key_a, &needed, 4) {
            Flight::Compute(g) => g,
            other => panic!("expected Compute, got {other:?}"),
        };
        let guard_b = match cache.flight(&key_b, &needed, 4) {
            Flight::Compute(g) => g,
            other => panic!("expected Compute, got {other:?}"),
        };
        assert_eq!(cache.inflight_len(), 2);
        // Joining a flight registers nothing new.
        let waiter = match cache.flight(&key_a, &needed, 4) {
            Flight::Wait(w) => w,
            other => panic!("expected Wait, got {other:?}"),
        };
        assert_eq!(cache.inflight_len(), 2);
        guard_a.fulfill(slice(&db, vec!["a".into()]));
        assert_eq!(cache.inflight_len(), 1, "fulfillment retires the flight");
        assert!(waiter.wait().is_some());
        drop(guard_b);
        assert_eq!(cache.inflight_len(), 0, "abandonment retires the flight");
    }

    /// A dropped guard poisons the flight: waiters wake with `None`, retry,
    /// and one of them wins the recomputation.
    #[test]
    fn single_flight_poisoned_flight_is_retryable() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        let key = CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat], 0);
        let needed = vec![vec![Value::from("a")]];

        let guard = match cache.flight(&key, &needed, 4) {
            Flight::Compute(g) => g,
            other => panic!("expected Compute, got {other:?}"),
        };
        let waiter = match cache.flight(&key, &needed, 4) {
            Flight::Wait(w) => w,
            other => panic!("expected Wait, got {other:?}"),
        };
        drop(guard); // computation failed
        assert!(waiter.wait().is_none(), "poisoned flight yields None");
        // The retry wins a fresh flight and completes normally.
        match cache.flight(&key, &needed, 4) {
            Flight::Compute(g) => g.fulfill(slice(&db, vec!["a".into()])),
            other => panic!("retry must win the flight, got {other:?}"),
        }
        assert!(matches!(cache.flight(&key, &needed, 4), Flight::Hit(_)));
    }

    /// N threads hammering one cache with overlapping keys: no update may
    /// be lost, and the counter totals must reconcile with the operations
    /// actually performed.
    #[test]
    fn concurrent_hammering_reconciles() {
        let db = db();
        let cache = EvalCache::with_shards(8);
        let n_threads = 8usize;
        let n_keys = 32usize;
        let rounds = 200usize;
        let needed = vec![vec![Value::from("a")]];
        let gets_answered: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_threads)
                .map(|t| {
                    let cache = cache.clone();
                    let db = &db;
                    let needed = &needed;
                    scope.spawn(move || {
                        let mut answered = 0u64;
                        for r in 0..rounds {
                            // Overlapping key space: every thread touches
                            // every key, offset so threads collide.
                            let k = (t + r) % n_keys;
                            let key = CacheKey::new(
                                AggFunction::Count,
                                AggColumn::Star,
                                vec![ColumnRef::new(0, k)],
                                0,
                            );
                            if cache.get(&key, needed, 4).is_none() {
                                cache.put(key, slice(db, vec!["a".into()]));
                            }
                            answered += 1;
                        }
                        answered
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(gets_answered, (n_threads * rounds) as u64);
        let stats = cache.stats();
        // Every get was either a hit or a miss — none lost.
        assert_eq!(stats.hits() + stats.misses(), (n_threads * rounds) as u64);
        // Every key that was ever put survives (puts only add or replace).
        assert_eq!(cache.len(), n_keys.min(n_threads * rounds));
        // Each of the n_keys keys missed at least once (first toucher).
        assert!(stats.misses() >= n_keys as u64);
        // All slices cover the same literals, so racing re-puts of a key
        // are coverage-preserving no-ops: nothing is ever evicted, and the
        // resident entry count is exactly the key count.
        assert_eq!(stats.evictions(), 0);
        assert_eq!(stats.entries(), n_keys as u64);
        // Per-shard totals sum to the global totals by construction; spot
        // check the snapshot is per-shard.
        assert_eq!(stats.shards.len(), 8);
    }

    /// The delta-aware probe path: a slice stamped at the old watermark
    /// never satisfies a probe at the new one, but its checkpoint is handed
    /// to the flight winner as a patch base so only the appended tail is
    /// rescanned.
    #[test]
    fn stale_stamped_slices_never_hit_and_seed_patch_bases() {
        use crate::block::BLOCK_ROWS;
        use crate::cube::{execute_patch_in, CubeOptions};
        let n1 = 2 * BLOCK_ROWS + 300;
        let cats: Vec<Value> = (0..n1).map(|i| ["a", "b"][i % 2].into()).collect();
        let t = Table::from_columns("t", vec![("cat", cats)]).unwrap();
        let mut db = Database::new("d");
        db.add_table(t);
        let cat = db.resolve("t", "cat").unwrap();
        let options = CubeOptions {
            partition_blocks: 1,
            ..CubeOptions::default()
        };
        let cube = CubeQuery {
            dims: vec![cat],
            relevant: vec![vec!["a".into()]],
            aggregates: vec![(AggFunction::Count, AggColumn::Star)],
        };
        let r1 = cube.execute_with(&db, &options).unwrap();
        assert!(r1.checkpoint().is_some(), "eligible scan must checkpoint");
        let w1 = db.watermark();

        let cache = EvalCache::new();
        let key = CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat], db.version());
        let needed = vec![vec![Value::from("a")]];
        cache.put(
            key.clone(),
            CachedSlice::new(Arc::new(r1), 0, AggFunction::Count, w1),
        );
        assert!(cache.get(&key, &needed, w1).is_some());

        let batch: Vec<Vec<Value>> = (0..64).map(|_| vec!["a".into()]).collect();
        db.append_rows("t", &batch).unwrap();
        let w2 = db.watermark();
        assert_eq!(w2, w1 + 64);
        // The resident slice is stamped w1: a probe at w2 must miss ...
        assert!(cache.get(&key, &needed, w2).is_none());
        // ... but the flight winner receives its checkpoint as a patch base.
        let guard = match cache.flight(&key, &needed, w2) {
            Flight::Compute(g) => g,
            other => panic!("expected Compute, got {other:?}"),
        };
        assert_eq!(guard.rows(), w2);
        let base = guard.patch_base().expect("stale slice seeds a patch base");
        assert_eq!(base.rows(), 2 * BLOCK_ROWS, "span-aligned boundary");
        let patched = execute_patch_in(&db, &base.clone(), &options, None).unwrap();
        assert_eq!(patched.stats.grids_patched, 1);
        assert!(
            patched.stats.rows_scanned < n1 as u64,
            "patch scans the tail, not the corpus"
        );
        guard.fulfill(CachedSlice::new(
            Arc::new(patched),
            0,
            AggFunction::Count,
            w2,
        ));
        let hit = cache
            .get(&key, &needed, w2)
            .expect("patched slice is resident");
        assert_eq!(
            hit.lookup(&[Some("a".into())]),
            Ok(Some((n1 / 2 + 64) as f64))
        );
    }

    /// Flights are watermark-scoped: a probe at a newer watermark never
    /// joins a flight computing at the old one — it wins its own — while a
    /// same-watermark probe still waits.
    #[test]
    fn waiters_only_join_flights_at_their_watermark() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        let key = CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat], 0);
        let needed = vec![vec![Value::from("a")]];
        let g4 = match cache.flight(&key, &needed, 4) {
            Flight::Compute(g) => g,
            other => panic!("expected Compute, got {other:?}"),
        };
        let g5 = match cache.flight(&key, &needed, 5) {
            Flight::Compute(g) => g,
            other => {
                panic!("a newer-watermark probe must not wait on a stale flight, got {other:?}")
            }
        };
        let waiter = match cache.flight(&key, &needed, 4) {
            Flight::Wait(w) => w,
            other => panic!("same-watermark probe must wait, got {other:?}"),
        };
        g4.fulfill(slice(&db, vec!["a".into()]));
        assert!(waiter.wait().is_some());
        drop(g5);
        assert_eq!(cache.inflight_len(), 0);
    }

    /// Structural mutations (unsealing, schema changes) bump the database
    /// version, which is part of the key: every slice cached under the old
    /// version becomes unreachable — a hard invalidation with no scanning
    /// of resident entries.
    #[test]
    fn structural_version_in_key_hard_invalidates() {
        let mut db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        let key_v = |db: &Database| {
            CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat], db.version())
        };
        let needed = vec![vec![Value::from("a")]];
        cache.put(key_v(&db), slice(&db, vec!["a".into()]));
        assert!(cache.get(&key_v(&db), &needed, db.watermark()).is_some());
        db.unseal_tables();
        assert!(
            cache.get(&key_v(&db), &needed, db.watermark()).is_none(),
            "version bump makes old-version entries unreachable"
        );
    }

    /// Per-key overflow eviction prefers stale-stamped slices — the ones a
    /// fresh probe can never hit — and a put stamped older than a resident
    /// covering slice never displaces it.
    #[test]
    fn overflow_eviction_prefers_stale_stamped_slices() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        let key = CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat], 0);
        let mk = |lit: &str, rows: u64| {
            let cube = CubeQuery {
                dims: vec![cat],
                relevant: vec![vec![lit.into()]],
                aggregates: vec![(AggFunction::Count, AggColumn::Star)],
            }
            .execute(&db)
            .unwrap();
            CachedSlice::new(Arc::new(cube), 0, AggFunction::Count, rows)
        };
        // Fill to the cap: one stale-stamped slice among fresh ones.
        cache.put(key.clone(), mk("a", 3));
        cache.put(key.clone(), mk("b", 4));
        cache.put(key.clone(), mk("c", 4));
        cache.put(key.clone(), mk("l-d", 4));
        assert_eq!(cache.len(), SLICES_PER_KEY);
        // Overflow: the stale-stamped "a"@3 goes first, not the oldest
        // fresh slice.
        cache.put(key.clone(), mk("l-e", 4));
        assert!(cache.get(&key, &[vec![Value::from("a")]], 3).is_none());
        assert!(cache.get(&key, &[vec![Value::from("b")]], 4).is_some());
        // A put stamped older than a newer-stamped covering resident slice
        // lands but can never displace it.
        cache.put(key.clone(), mk("b", 3));
        assert!(
            cache.get(&key, &[vec![Value::from("b")]], 4).is_some(),
            "older-stamped put must not displace the fresh slice"
        );
    }
}
