//! Result caching across claims and EM iterations (§6.3).
//!
//! The paper indexes *(partial) cube query results by a combination of one
//! aggregation column, one aggregation function, and a set of cube
//! dimensions*. The cached value holds results for **all** literals with
//! non-zero marginal probability anywhere in the document, so different
//! claims (whose relevant-literal subsets overlap heavily) and later EM
//! iterations hit the same entries.

use crate::cube::{CubeResult, DimSel};
use crate::database::ColumnRef;
use crate::query::{AggColumn, AggFunction};
use crate::value::Value;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache key: the paper's chosen indexing granularity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub function: AggFunction,
    pub column: AggColumn,
    /// Cube dimensions, sorted for canonical form.
    pub dims: Vec<ColumnRef>,
}

impl CacheKey {
    pub fn new(function: AggFunction, column: AggColumn, mut dims: Vec<ColumnRef>) -> Self {
        dims.sort_unstable();
        Self {
            function,
            column,
            dims,
        }
    }
}

/// One aggregate's view of a cube result.
#[derive(Debug, Clone)]
pub struct CachedSlice {
    cube: Arc<CubeResult>,
    agg_idx: usize,
    /// Whether absent groups should read as 0 (count-like aggregates).
    count_like: bool,
}

impl CachedSlice {
    pub fn new(cube: Arc<CubeResult>, agg_idx: usize, function: AggFunction) -> Self {
        Self {
            cube,
            agg_idx,
            count_like: matches!(function, AggFunction::Count | AggFunction::CountDistinct),
        }
    }

    /// Dimensions of the underlying cube (in cube order).
    pub fn dims(&self) -> &[ColumnRef] {
        self.cube.dims()
    }

    /// Does this slice contain every literal in `needed` (per dimension,
    /// aligned with the cube's dimension order)?
    pub fn covers(&self, needed: &[Vec<Value>]) -> bool {
        if needed.len() != self.cube.dims().len() {
            return false;
        }
        needed.iter().enumerate().all(|(dim, lits)| {
            lits.iter()
                .all(|lit| self.cube.literal_index(dim, lit).is_some())
        })
    }

    /// Look up the aggregate for an assignment expressed as *values*
    /// (`None` = dimension unrestricted), aligned with [`Self::dims`].
    ///
    /// Returns `Ok(aggregate)` where the inner `Option` is SQL NULL, or
    /// `Err(())` when some literal is unknown to this slice (a cache-coverage
    /// violation — the caller should treat it as a miss).
    // The unit error deliberately carries no payload: callers translate it
    // straight into a cache miss.
    #[allow(clippy::result_unit_err)]
    pub fn lookup(&self, assignment: &[Option<Value>]) -> Result<Option<f64>, ()> {
        let sel = self.selectors(assignment)?;
        if self.count_like {
            Ok(Some(self.cube.get_count(&sel, self.agg_idx)))
        } else {
            Ok(self.cube.get(&sel, self.agg_idx))
        }
    }

    /// Count-semantics lookup (absent group = 0), regardless of the slice's
    /// aggregate kind. Only meaningful for count slices.
    #[allow(clippy::result_unit_err)]
    pub fn lookup_count(&self, assignment: &[Option<Value>]) -> Result<f64, ()> {
        let sel = self.selectors(assignment)?;
        Ok(self.cube.get_count(&sel, self.agg_idx))
    }

    fn selectors(&self, assignment: &[Option<Value>]) -> Result<Vec<DimSel>, ()> {
        if assignment.len() != self.cube.dims().len() {
            return Err(());
        }
        assignment
            .iter()
            .enumerate()
            .map(|(dim, v)| match v {
                None => Ok(DimSel::Any),
                Some(value) => {
                    // A literal that was requested as relevant but does not
                    // occur in the column has no index *only if* it was not
                    // part of the cube's relevant list; requested literals
                    // are always listed, so a miss here means the cache entry
                    // was built for a different literal set.
                    self.cube
                        .literal_index(dim, value)
                        .map(DimSel::Literal)
                        .ok_or(())
                }
            })
            .collect()
    }
}

/// Hit/miss counters (lock-free reads for the experiment harness).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheStats {
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// The shared evaluation cache. Cloning shares the underlying storage.
#[derive(Debug, Clone, Default)]
pub struct EvalCache {
    inner: Arc<EvalCacheInner>,
}

#[derive(Debug, Default)]
struct EvalCacheInner {
    entries: RwLock<HashMap<CacheKey, CachedSlice>>,
    stats: CacheStats,
}

impl EvalCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch a slice covering `needed` literals, counting a hit or miss.
    pub fn get(&self, key: &CacheKey, needed: &[Vec<Value>]) -> Option<CachedSlice> {
        let entries = self.inner.entries.read();
        match entries.get(key) {
            Some(slice) if slice.covers(needed) => {
                self.inner.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(slice.clone())
            }
            _ => {
                self.inner.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a slice (replacing any previous entry for the key).
    pub fn put(&self, key: CacheKey, slice: CachedSlice) {
        self.inner.entries.write().insert(key, slice);
    }

    pub fn stats(&self) -> &CacheStats {
        &self.inner.stats
    }

    pub fn len(&self) -> usize {
        self.inner.entries.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries (e.g. between documents).
    pub fn clear(&self) {
        self.inner.entries.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeQuery;
    use crate::database::Database;
    use crate::table::Table;

    fn db() -> Database {
        let t = Table::from_columns(
            "t",
            vec![("cat", vec!["a".into(), "a".into(), "b".into(), "c".into()])],
        )
        .unwrap();
        let mut db = Database::new("d");
        db.add_table(t);
        db
    }

    fn slice(db: &Database, literals: Vec<Value>) -> CachedSlice {
        let cat = db.resolve("t", "cat").unwrap();
        let cube = CubeQuery {
            dims: vec![cat],
            relevant: vec![literals],
            aggregates: vec![(AggFunction::Count, AggColumn::Star)],
        }
        .execute(db)
        .unwrap();
        CachedSlice::new(Arc::new(cube), 0, AggFunction::Count)
    }

    #[test]
    fn slice_lookup_by_value() {
        let db = db();
        let s = slice(&db, vec!["a".into(), "b".into()]);
        assert_eq!(s.lookup(&[Some("a".into())]), Ok(Some(2.0)));
        assert_eq!(s.lookup(&[Some("b".into())]), Ok(Some(1.0)));
        assert_eq!(s.lookup(&[None]), Ok(Some(4.0)));
        // "c" was not in the relevant set: coverage violation.
        assert_eq!(s.lookup(&[Some("c".into())]), Err(()));
    }

    #[test]
    fn coverage_check() {
        let db = db();
        let s = slice(&db, vec!["a".into(), "b".into()]);
        assert!(s.covers(&[vec!["a".into()]]));
        assert!(s.covers(&[vec!["a".into(), "b".into()]]));
        assert!(!s.covers(&[vec!["c".into()]]));
        assert!(!s.covers(&[vec![], vec![]]), "dimension count must match");
    }

    #[test]
    fn cache_hits_and_misses() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        let key = CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat]);
        let needed = vec![vec![Value::from("a")]];

        assert!(cache.get(&key, &needed).is_none());
        assert_eq!(cache.stats().misses(), 1);

        cache.put(key.clone(), slice(&db, vec!["a".into()]));
        assert!(cache.get(&key, &needed).is_some());
        assert_eq!(cache.stats().hits(), 1);

        // A broader literal set than cached is a miss (coverage).
        let broader = vec![vec![Value::from("a"), Value::from("c")]];
        assert!(cache.get(&key, &broader).is_none());
        assert_eq!(cache.stats().misses(), 2);
        assert!(cache.stats().hit_rate() > 0.3 && cache.stats().hit_rate() < 0.4);
    }

    #[test]
    fn cache_key_canonicalizes_dimension_order() {
        let a = ColumnRef::new(0, 1);
        let b = ColumnRef::new(0, 2);
        let k1 = CacheKey::new(AggFunction::Count, AggColumn::Star, vec![a, b]);
        let k2 = CacheKey::new(AggFunction::Count, AggColumn::Star, vec![b, a]);
        assert_eq!(k1, k2);
    }

    #[test]
    fn clear_empties_cache() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        cache.put(
            CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat]),
            slice(&db, vec!["a".into()]),
        );
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_clones_see_the_same_entries() {
        let db = db();
        let cat = db.resolve("t", "cat").unwrap();
        let cache = EvalCache::new();
        let clone = cache.clone();
        clone.put(
            CacheKey::new(AggFunction::Count, AggColumn::Star, vec![cat]),
            slice(&db, vec!["a".into()]),
        );
        assert_eq!(cache.len(), 1);
    }
}
