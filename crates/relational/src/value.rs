//! Scalar values and data types.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Int,
    Float,
    Str,
}

/// A scalar value as it appears in a cell or an equality predicate.
///
/// Strings are owned here; inside column storage they are dictionary-encoded
/// (see [`crate::column::StringDictionary`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
}

impl Value {
    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one. Integers widen to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parse a raw CSV cell into the most specific value:
    /// empty → `Null`, integer → `Int`, decimal → `Float`, otherwise `Str`.
    ///
    /// Thousands separators inside otherwise-numeric cells (`"1,234"`) are
    /// accepted, mirroring how the paper's datasets store counts.
    pub fn parse_cell(raw: &str) -> Value {
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("na") || trimmed == "-" {
            return Value::Null;
        }
        if let Ok(i) = trimmed.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = trimmed.parse::<f64>() {
            if f.is_finite() {
                return Value::Float(f);
            }
        }
        // "1,234" / "12,345,678" style integers.
        if trimmed.len() > 3 && trimmed.contains(',') {
            let no_sep: String = trimmed.chars().filter(|c| *c != ',').collect();
            if looks_like_separated_number(trimmed) {
                if let Ok(i) = no_sep.parse::<i64>() {
                    return Value::Int(i);
                }
                if let Ok(f) = no_sep.parse::<f64>() {
                    if f.is_finite() {
                        return Value::Float(f);
                    }
                }
            }
        }
        Value::Str(trimmed.to_string())
    }

    /// The [`DataType`] of this value, or `None` for `Null`.
    pub fn kind(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }
}

/// Checks whether a string is digits grouped in threes by commas
/// (optionally with a decimal fraction and sign), e.g. `-1,234,567.8`.
fn looks_like_separated_number(s: &str) -> bool {
    let s = s.strip_prefix('-').unwrap_or(s);
    let (int_part, frac_part) = match s.split_once('.') {
        Some((i, f)) => (i, Some(f)),
        None => (s, None),
    };
    if let Some(f) = frac_part {
        if f.is_empty() || !f.bytes().all(|b| b.is_ascii_digit()) {
            return false;
        }
    }
    let groups: Vec<&str> = int_part.split(',').collect();
    if groups.len() < 2 {
        return false;
    }
    let first_ok = !groups[0].is_empty()
        && groups[0].len() <= 3
        && groups[0].bytes().all(|b| b.is_ascii_digit());
    first_ok
        && groups[1..]
            .iter()
            .all(|g| g.len() == 3 && g.bytes().all(|b| b.is_ascii_digit()))
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_cell_types() {
        assert_eq!(Value::parse_cell("42"), Value::Int(42));
        assert_eq!(Value::parse_cell("-7"), Value::Int(-7));
        assert_eq!(Value::parse_cell("3.5"), Value::Float(3.5));
        assert_eq!(Value::parse_cell(" hello "), Value::Str("hello".into()));
        assert_eq!(Value::parse_cell(""), Value::Null);
        assert_eq!(Value::parse_cell("  "), Value::Null);
        assert_eq!(Value::parse_cell("NA"), Value::Null);
    }

    #[test]
    fn parse_cell_thousands_separators() {
        assert_eq!(Value::parse_cell("1,234"), Value::Int(1234));
        assert_eq!(Value::parse_cell("12,345,678"), Value::Int(12_345_678));
        assert_eq!(Value::parse_cell("1,234.5"), Value::Float(1234.5));
        // Not a number: groups of the wrong width stay strings.
        assert_eq!(Value::parse_cell("12,34"), Value::Str("12,34".into()));
        assert_eq!(Value::parse_cell("a,b"), Value::Str("a,b".into()));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert_ne!(Value::Null, Value::Int(0));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn ordering_across_numeric_types() {
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
        assert_eq!(Value::Str("a".into()).partial_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Str("indef".into()).to_string(), "'indef'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn as_f64_widens_ints() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }
}
