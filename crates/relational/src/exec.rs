//! Naive single-query execution.
//!
//! This is the baseline evaluation strategy of Table 6 in the paper: every
//! candidate query is executed separately, with no merging and no caching.
//! One scan over the (joined) relation per query.

use crate::aggregate::{ratio_from_counts, Accumulator};
use crate::database::Database;
use crate::error::Result;
use crate::join::JoinedRelation;
use crate::query::{AggFunction, SimpleAggregateQuery};

/// Execute one simple aggregate query. Returns `None` when the aggregate is
/// NULL under SQL semantics (e.g. `Avg` over an empty selection) or when a
/// ratio aggregate's denominator is zero.
pub fn execute_query(db: &Database, query: &SimpleAggregateQuery) -> Result<Option<f64>> {
    query.validate(db)?;
    let relation = JoinedRelation::for_tables(db, &query.tables_referenced())?;
    execute_on(db, &relation, query)
}

/// Execute a query against a pre-materialized relation (lets callers reuse
/// one join across many queries over the same table set).
pub fn execute_on(
    db: &Database,
    relation: &JoinedRelation,
    query: &SimpleAggregateQuery,
) -> Result<Option<f64>> {
    // Pre-resolve predicate columns to (resolver, column data, target code).
    // A predicate whose literal does not occur in the column matches no rows.
    let mut predicates = Vec::with_capacity(query.predicates.len());
    let mut impossible = Vec::new();
    for (i, p) in query.predicates.iter().enumerate() {
        let col = db.column(p.column);
        match col.group_code_of(&p.value) {
            Some(code) => predicates.push((relation.resolver(p.column), col, code)),
            None => impossible.push(i),
        }
    }

    let agg_col = query
        .column
        .as_column()
        .map(|c| (relation.resolver(c), db.column(c)));

    if query.function.is_ratio() {
        return execute_ratio(query, relation, &predicates, &impossible, &agg_col);
    }

    if !impossible.is_empty() {
        // Some predicate can never match: empty selection.
        return Ok(Accumulator::new(query.function).finish());
    }

    let mut acc = Accumulator::new(query.function);
    for row in 0..relation.len() {
        if !predicates
            .iter()
            .all(|(res, col, code)| col.group_code(res.base_row(row)) == Some(*code))
        {
            continue;
        }
        fold_row(&mut acc, row, &agg_col);
    }
    Ok(acc.finish())
}

/// Ratio aggregates (`Percentage`, `ConditionalProbability`) need counts of
/// up to three row subsets; one scan computes them all.
fn execute_ratio(
    query: &SimpleAggregateQuery,
    relation: &JoinedRelation,
    predicates: &[(
        crate::join::RowResolver<'_>,
        &crate::column::ColumnData,
        u64,
    )],
    impossible: &[usize],
    agg_col: &Option<(crate::join::RowResolver<'_>, &crate::column::ColumnData)>,
) -> Result<Option<f64>> {
    // The first *declared* predicate is the condition. If it is impossible,
    // the denominator for conditional probability is zero.
    let first_impossible = impossible.contains(&0);
    let any_impossible = !impossible.is_empty();

    let mut full = 0u64; // all predicates hold
    let mut first_only = 0u64; // first predicate holds
    let mut base = 0u64; // no predicate applied
    for row in 0..relation.len() {
        let non_null = match agg_col {
            None => true,
            Some((res, col)) => !col.is_null(res.base_row(row)),
        };
        if !non_null {
            continue;
        }
        base += 1;
        if first_impossible {
            continue;
        }
        let mut all = !any_impossible;
        for (i, (res, col, code)) in predicates.iter().enumerate() {
            let hit = col.group_code(res.base_row(row)) == Some(*code);
            // `predicates` skips impossible ones, so position 0 here is the
            // first *possible* predicate; only treat it as the condition when
            // predicate 0 was possible.
            if i == 0 && !impossible.contains(&0) && hit {
                first_only += 1;
            }
            if !hit {
                all = false;
            }
        }
        if all {
            full += 1;
        }
    }
    match query.function {
        AggFunction::Percentage => Ok(ratio_from_counts(full as f64, base as f64)),
        AggFunction::ConditionalProbability => {
            Ok(ratio_from_counts(full as f64, first_only as f64))
        }
        _ => unreachable!("execute_ratio called for non-ratio function"),
    }
}

#[inline]
fn fold_row(
    acc: &mut Accumulator,
    row: usize,
    agg_col: &Option<(crate::join::RowResolver<'_>, &crate::column::ColumnData)>,
) {
    match agg_col {
        None => acc.update(None, None, true), // COUNT(*)
        Some((res, col)) => {
            let base = res.base_row(row);
            acc.update(col.get_f64(base), col.group_code(base), !col.is_null(base));
        }
    }
}

/// Convenience: execute a batch of queries naively, one scan each.
/// Used by the Table 6 baseline.
pub fn execute_all_naive(
    db: &Database,
    queries: &[SimpleAggregateQuery],
) -> Result<Vec<Option<f64>>> {
    queries.iter().map(|q| execute_query(db, q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AggColumn, Predicate};
    use crate::table::Table;
    use crate::value::Value;

    /// The NFL suspensions miniature from Figure 2 of the paper.
    fn nfl() -> Database {
        let t = Table::from_columns(
            "nflsuspensions",
            vec![
                (
                    "games",
                    vec![
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "10".into(),
                        "4".into(),
                    ],
                ),
                (
                    "category",
                    vec![
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "gambling".into(),
                        "peds".into(),
                        "personal conduct".into(),
                    ],
                ),
                (
                    "year",
                    vec![
                        Value::Int(1989),
                        Value::Int(1995),
                        Value::Int(2014),
                        Value::Int(1983),
                        Value::Int(2014),
                        Value::Int(2014),
                    ],
                ),
            ],
        )
        .unwrap();
        let mut db = Database::new("nfl");
        db.add_table(t);
        db
    }

    fn col(db: &Database, name: &str) -> crate::database::ColumnRef {
        db.resolve("nflsuspensions", name).unwrap()
    }

    #[test]
    fn paper_example_queries() {
        let db = nfl();
        // "There were only four previous lifetime bans"
        let q = SimpleAggregateQuery::count_star(vec![Predicate::new(col(&db, "games"), "indef")]);
        assert_eq!(execute_query(&db, &q).unwrap(), Some(4.0));
        // "three were for repeated substance abuse"
        let q = SimpleAggregateQuery::count_star(vec![
            Predicate::new(col(&db, "games"), "indef"),
            Predicate::new(col(&db, "category"), "substance abuse, repeated offense"),
        ]);
        assert_eq!(execute_query(&db, &q).unwrap(), Some(3.0));
        // "one was for gambling"
        let q = SimpleAggregateQuery::count_star(vec![
            Predicate::new(col(&db, "games"), "indef"),
            Predicate::new(col(&db, "category"), "gambling"),
        ]);
        assert_eq!(execute_query(&db, &q).unwrap(), Some(1.0));
    }

    #[test]
    fn numeric_aggregates() {
        let db = nfl();
        let year = AggColumn::Column(col(&db, "year"));
        let runs = [
            (AggFunction::Min, 1983.0),
            (AggFunction::Max, 2014.0),
            (AggFunction::Sum, 12_009.0),
            (AggFunction::Avg, 12_009.0 / 6.0),
            (AggFunction::Count, 6.0),
            (AggFunction::CountDistinct, 4.0),
        ];
        for (f, expected) in runs {
            let q = SimpleAggregateQuery::new(f, year, vec![]);
            assert_eq!(execute_query(&db, &q).unwrap(), Some(expected), "{f}");
        }
    }

    #[test]
    fn predicate_with_unknown_literal_selects_nothing() {
        let db = nfl();
        let q = SimpleAggregateQuery::count_star(vec![Predicate::new(
            col(&db, "games"),
            "never-occurs",
        )]);
        assert_eq!(execute_query(&db, &q).unwrap(), Some(0.0));
        let q = SimpleAggregateQuery::new(
            AggFunction::Avg,
            AggColumn::Column(col(&db, "year")),
            vec![Predicate::new(col(&db, "games"), "never-occurs")],
        );
        assert_eq!(execute_query(&db, &q).unwrap(), None);
    }

    #[test]
    fn percentage_counts_share_of_rows() {
        let db = nfl();
        let q = SimpleAggregateQuery::new(
            AggFunction::Percentage,
            AggColumn::Star,
            vec![Predicate::new(col(&db, "games"), "indef")],
        );
        // 4 of 6 rows: 66.67%
        let v = execute_query(&db, &q).unwrap().unwrap();
        assert!((v - 66.666).abs() < 0.01, "{v}");
    }

    #[test]
    fn conditional_probability_uses_first_predicate_as_condition() {
        let db = nfl();
        let q = SimpleAggregateQuery::new(
            AggFunction::ConditionalProbability,
            AggColumn::Star,
            vec![
                Predicate::new(col(&db, "games"), "indef"),
                Predicate::new(col(&db, "category"), "gambling"),
            ],
        );
        // Among the 4 indef rows, 1 is gambling: 25%.
        assert_eq!(execute_query(&db, &q).unwrap(), Some(25.0));
    }

    #[test]
    fn count_of_column_skips_nulls() {
        let t = Table::from_columns(
            "t",
            vec![("x", vec![Value::Int(1), Value::Null, Value::Int(3)])],
        )
        .unwrap();
        let mut db = Database::new("d");
        db.add_table(t);
        let x = db.resolve("t", "x").unwrap();
        let q = SimpleAggregateQuery::new(AggFunction::Count, AggColumn::Column(x), vec![]);
        assert_eq!(execute_query(&db, &q).unwrap(), Some(2.0));
        let q = SimpleAggregateQuery::count_star(vec![]);
        assert_eq!(execute_query(&db, &q).unwrap(), Some(3.0));
    }

    #[test]
    fn predicate_on_numeric_column_works() {
        let db = nfl();
        let q = SimpleAggregateQuery::count_star(vec![Predicate::new(
            col(&db, "year"),
            Value::Int(2014),
        )]);
        assert_eq!(execute_query(&db, &q).unwrap(), Some(3.0));
    }

    #[test]
    fn batch_execution() {
        let db = nfl();
        let qs = vec![
            SimpleAggregateQuery::count_star(vec![]),
            SimpleAggregateQuery::count_star(vec![Predicate::new(col(&db, "games"), "indef")]),
        ];
        let rs = execute_all_naive(&db, &qs).unwrap();
        assert_eq!(rs, vec![Some(6.0), Some(4.0)]);
    }
}
