//! # agg-relational
//!
//! An in-memory columnar relational engine purpose-built for the AggChecker
//! reproduction. It stands in for PostgreSQL in the original system and
//! provides exactly the capabilities the paper's evaluation layer needs:
//!
//! * typed columnar tables with dictionary-encoded strings ([`Table`]),
//! * schemas with primary-key / foreign-key constraints and acyclic join
//!   graphs ([`Database`], [`schema`]),
//! * a CSV loader with type inference ([`csv`]) and a data-dictionary
//!   parser ([`datadict`]),
//! * the paper's eight aggregation functions ([`AggFunction`]),
//! * a naive per-query executor ([`exec`]),
//! * the `GROUP BY CUBE` operator with `InOrDefault` literal remapping
//!   (§6.2 of the paper, [`cube`]),
//! * a merge planner that covers many candidate queries with few cube
//!   executions (§6.2, [`merge`]),
//! * a result cache shared across claims and EM iterations (§6.3,
//!   [`cache`]), with per-key single-flight so concurrent workers compute
//!   each cube exactly once,
//! * a cube-task scheduler that turns merged plans into independent units
//!   of parallel work ([`schedule`]), and
//! * a simple evaluation cost model (§6.1, [`cost`]).
//!
//! The engine deliberately supports only the query class from Definition 2 of
//! the paper — *simple aggregate queries*: a single aggregate over an
//! equi-join along PK-FK paths, filtered by a conjunction of unary equality
//! predicates.

pub mod aggregate;
pub mod block;
pub mod cache;
#[cfg(any(test, feature = "chaos"))]
pub mod chaos;
pub mod column;
pub mod cost;
pub mod csv;
pub mod cube;
pub mod database;
pub mod datadict;
pub mod error;
pub mod exec;
pub mod fxhash;
pub mod join;
pub mod merge;
pub mod query;
pub mod schedule;
pub mod schema;
pub mod table;
pub mod value;

pub use aggregate::{ratio_from_counts, Accumulator};
pub use block::{
    code_width, partition_ranges, CodeBlock, ColumnEncoding, NumZone, ZoneMap, BLOCK_ROWS,
    DEFAULT_PARTITION_BLOCKS,
};
pub use cache::{
    CacheKey, CacheStats, CachedSlice, EvalCache, Flight, FlightGuard, FlightRequest, FlightWaiter,
    ShardStats, DEFAULT_CACHE_SHARDS,
};
pub use column::{ColumnData, StringDictionary, NULL_CODE};
pub use cost::CostModel;
pub use cube::{
    execute_fused_in, execute_fused_on_in, execute_patch_in, ArenaStats, CubeOptions, CubeQuery,
    CubeResult, CubeStats, DimSel, GridArena, GridMode, ScanCheckpoint,
};
pub use database::{ColumnRef, Database};
pub use error::{RelationalError, Result};
pub use exec::{execute_all_naive, execute_query};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use join::{JoinPath, JoinedRelation};
pub use merge::{MergePlan, MergePlanner, MergeStats};
pub use query::{AggColumn, AggFunction, Predicate, SimpleAggregateQuery};
pub use schedule::{
    run_requests, run_wave, CubeScheduler, CubeTask, ScanGroup, TaskBundling, TaskHandle, WaveExec,
    WaveOutcome, WaveRequest, WaveStats, MAX_POISON_RETRIES,
};
pub use schema::{ColumnMeta, ForeignKey, TableSchema};
pub use table::Table;
pub use value::{DataType, Value};
