//! Block-based compressed column encodings with per-block zone maps.
//!
//! The plain storage layer keeps dictionary codes as `Vec<u32>` and numeric
//! values as `Vec<Option<_>>`; every fused scan touches every row of every
//! referenced column. This module adds a compressed, block-oriented view
//! built once when a table is sealed ([`crate::table::Table::seal`]):
//!
//! * string columns become [`CodeBlock`]s of [`BLOCK_ROWS`] rows each,
//!   either **bit-packed** to `ceil(log2(dict_len))` bits per code (with a
//!   null bitmap when the block has NULLs) or **run-length encoded** when
//!   runs are the smaller representation (sorted or low-cardinality data);
//! * numeric columns keep their plain values but gain per-block
//!   [`NumZone`]s (min/max/null count) so scans can reason about a block
//!   without reading it;
//! * every code block carries a [`ZoneMap`] — min/max dictionary code over
//!   the non-null rows, null count, and run count — which is what lets the
//!   cube kernel prove "no row of this block can match any relevant
//!   literal" or "every row of this block lands in one grid cell" and
//!   bulk-apply the block instead of decoding it (`crate::cube`).
//!
//! The block size is [`BLOCK_ROWS`] = the cube kernel's scan-chunk size, so
//! one scan chunk is exactly one storage block: the encoded path keeps the
//! same block structure, the same chaos-hook cadence, and the same f64
//! accumulation order as the plain path — reports stay bit-identical
//! (`docs/storage.md` spells out the determinism contract).

use crate::column::{ColumnData, NULL_CODE};

/// Rows per storage block. Deliberately equal to the cube kernel's
/// `SCAN_BLOCK` (asserted there at compile time) so the block iterator of a
/// fused scan maps one scan chunk onto exactly one storage block.
pub const BLOCK_ROWS: usize = 2048;

/// Zone map of one [`CodeBlock`]: enough metadata to decide, without
/// decoding, whether a block can contain a relevant literal and whether it
/// is constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneMap {
    /// Smallest dictionary code among non-null rows; `u32::MAX` when the
    /// block is all-NULL (then `min_code > max_code`, so any "is some code
    /// in range" test is vacuously false).
    pub min_code: u32,
    /// Largest dictionary code among non-null rows; 0 when all-NULL.
    pub max_code: u32,
    /// NULL rows in the block.
    pub null_count: u32,
    /// Distinct value runs (NULL counts as a value): 1 means the whole
    /// block holds one value — or is entirely NULL.
    pub run_count: u32,
}

/// Per-block zone map of a numeric column. The values themselves stay in
/// the plain column; this is pure scan metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumZone {
    /// Smallest non-null value (`f64::INFINITY` when all-NULL).
    pub min: f64,
    /// Largest non-null value (`f64::NEG_INFINITY` when all-NULL).
    pub max: f64,
    /// NULL rows in the block.
    pub null_count: u32,
}

/// Physical representation of one block's dictionary codes.
#[derive(Debug, Clone)]
enum CodeRepr {
    /// `width`-bit codes packed little-endian into `words`. NULL rows store
    /// 0 and are disambiguated by the block's null bitmap; `width == 0`
    /// means every non-null row holds code 0 (single-entry dictionary).
    Packed { words: Box<[u64]> },
    /// `(code, run length)` runs in row order; NULL runs store
    /// [`NULL_CODE`] directly, so RLE blocks never need a bitmap.
    Rle { runs: Box<[(u32, u32)]> },
}

/// One encoded block of a dictionary-coded column: up to [`BLOCK_ROWS`]
/// rows, the cheaper of bit-packed or RLE representation, and a
/// [`ZoneMap`].
#[derive(Debug, Clone)]
pub struct CodeBlock {
    len: u32,
    /// Bits per packed code (column-wide: `ceil(log2(dict_len))`).
    width: u8,
    repr: CodeRepr,
    /// Bit `i` set ⇔ row `i` is NULL. Present only for packed blocks that
    /// contain NULLs.
    nulls: Option<Box<[u64]>>,
    zone: ZoneMap,
}

/// Bits needed to store any code of a dictionary with `dict_len` entries.
pub fn code_width(dict_len: usize) -> u8 {
    if dict_len <= 1 {
        0
    } else {
        (usize::BITS - (dict_len - 1).leading_zeros()) as u8
    }
}

/// Default scan-partition span in storage blocks (64 blocks ≈ 128k rows).
///
/// Partitions are the unit of scan parallelism *and* of f64 accumulation
/// order: a scan folds each partition into its own grid and merges the
/// partition grids in ascending partition order, so the span is part of the
/// determinism contract — changing it changes float-summation association
/// (`docs/storage.md`).
pub const DEFAULT_PARTITION_BLOCKS: usize = 64;

/// The fixed scan partitions of an `n_rows`-row relation: contiguous,
/// block-aligned row ranges of `partition_blocks` storage blocks each (the
/// last one possibly shorter). Boundaries are a pure function of the row
/// count and the span — never of worker count, scheduling, or encoding —
/// which is what makes partition-parallel scans bit-identical across
/// 1/2/4/8 workers and across completion orders.
///
/// `partition_blocks == 0` disables partitioning: the whole relation is one
/// partition. The degenerate cases (empty relation, relation within one
/// span) also return a single partition, so a partitioned scan of a small
/// relation is byte-for-byte the classic monolithic scan.
pub fn partition_ranges(n_rows: usize, partition_blocks: usize) -> Vec<std::ops::Range<usize>> {
    let span = partition_blocks.saturating_mul(BLOCK_ROWS);
    if span == 0 || n_rows <= span {
        return std::iter::once(0..n_rows).collect();
    }
    let mut ranges = Vec::with_capacity(n_rows.div_ceil(span));
    let mut start = 0;
    while start < n_rows {
        let end = (start + span).min(n_rows);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

impl CodeBlock {
    /// Encode one block of raw dictionary codes (`NULL_CODE` marks NULLs).
    /// `width` is the column-wide packed width from [`code_width`].
    ///
    /// Representation choice is by encoded size: RLE wins when its runs
    /// are smaller than the packed words plus (if the block has NULLs) the
    /// null bitmap; ties go to bit-packing, whose decode is branch-lighter.
    pub fn encode(codes: &[u32], width: u8) -> CodeBlock {
        assert!(!codes.is_empty() && codes.len() <= BLOCK_ROWS);
        let len = codes.len();

        // One pass for runs and the zone map.
        let mut runs: Vec<(u32, u32)> = Vec::new();
        let mut zone = ZoneMap {
            min_code: u32::MAX,
            max_code: 0,
            null_count: 0,
            run_count: 0,
        };
        for &code in codes {
            if code == NULL_CODE {
                zone.null_count += 1;
            } else {
                zone.min_code = zone.min_code.min(code);
                zone.max_code = zone.max_code.max(code);
            }
            match runs.last_mut() {
                Some((c, n)) if *c == code => *n += 1,
                _ => runs.push((code, 1)),
            }
        }
        zone.run_count = runs.len() as u32;

        let has_nulls = zone.null_count > 0;
        let rle_bytes = runs.len() * 8;
        let packed_bytes = (len * width as usize).div_ceil(64) * 8
            + if has_nulls { len.div_ceil(64) * 8 } else { 0 };
        if rle_bytes < packed_bytes {
            return CodeBlock {
                len: len as u32,
                width,
                repr: CodeRepr::Rle {
                    runs: runs.into_boxed_slice(),
                },
                nulls: None,
                zone,
            };
        }

        let mut words = vec![0u64; (len * width as usize).div_ceil(64)].into_boxed_slice();
        let mut nulls = has_nulls.then(|| vec![0u64; len.div_ceil(64)].into_boxed_slice());
        let w = width as usize;
        for (i, &code) in codes.iter().enumerate() {
            if code == NULL_CODE {
                if let Some(bitmap) = &mut nulls {
                    bitmap[i / 64] |= 1u64 << (i % 64);
                }
                continue; // NULL rows pack as 0.
            }
            debug_assert!(w == 0 && code == 0 || w > 0 && (code as u64) < (1u64 << w));
            if w > 0 {
                let bit = i * w;
                words[bit / 64] |= (code as u64) << (bit % 64);
                if bit % 64 + w > 64 {
                    words[bit / 64 + 1] |= (code as u64) >> (64 - bit % 64);
                }
            }
        }
        CodeBlock {
            len: len as u32,
            width,
            repr: CodeRepr::Packed { words },
            nulls,
            zone,
        }
    }

    /// Rows in this block.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn zone(&self) -> &ZoneMap {
        &self.zone
    }

    /// Encoded payload size in bytes (packed words or runs, plus the null
    /// bitmap) — what a scan physically reads when it decodes this block.
    pub fn encoded_bytes(&self) -> u64 {
        let payload = match &self.repr {
            CodeRepr::Packed { words } => words.len() * 8,
            CodeRepr::Rle { runs } => runs.len() * 8,
        };
        let bitmap = self.nulls.as_ref().map_or(0, |b| b.len() * 8);
        (payload + bitmap) as u64
    }

    /// The single code every row of this block holds, if the block is
    /// constant: a one-run block is either one non-null value or all-NULL
    /// (then [`NULL_CODE`] is returned).
    pub fn constant_code(&self) -> Option<u32> {
        (self.zone.run_count == 1).then_some(if self.zone.null_count > 0 {
            NULL_CODE
        } else {
            self.zone.min_code
        })
    }

    #[inline]
    fn is_null_at(&self, i: usize) -> bool {
        match &self.nulls {
            Some(bitmap) => bitmap[i / 64] >> (i % 64) & 1 == 1,
            None => false,
        }
    }

    /// NULL rows among the first `n` rows of the block. Exact for both
    /// representations: RLE walks runs, packed popcounts the null-bitmap
    /// prefix. Needed when a visibility watermark cuts the block mid-way and
    /// bulk counting must see only the visible prefix, not the sealed
    /// block's full [`ZoneMap::null_count`].
    pub fn prefix_null_count(&self, n: usize) -> u32 {
        if n >= self.len() {
            return self.zone.null_count;
        }
        match &self.repr {
            CodeRepr::Rle { runs } => {
                let mut nulls = 0u32;
                let mut pos = 0usize;
                for &(code, run) in runs.iter() {
                    if pos >= n {
                        break;
                    }
                    let take = (run as usize).min(n - pos);
                    if code == NULL_CODE {
                        nulls += take as u32;
                    }
                    pos += take;
                }
                nulls
            }
            CodeRepr::Packed { .. } => match &self.nulls {
                None => 0,
                Some(bitmap) => {
                    let full = n / 64;
                    let mut nulls: u32 = bitmap[..full].iter().map(|w| w.count_ones()).sum();
                    if !n.is_multiple_of(64) {
                        nulls += (bitmap[full] & ((1u64 << (n % 64)) - 1)).count_ones();
                    }
                    nulls
                }
            },
        }
    }

    /// Append the decoded raw codes (NULLs restored as [`NULL_CODE`]) —
    /// the round-trip inverse of [`CodeBlock::encode`].
    pub fn decode_into(&self, out: &mut Vec<u32>) {
        match &self.repr {
            CodeRepr::Rle { runs } => {
                for &(code, n) in runs.iter() {
                    out.extend(std::iter::repeat_n(code, n as usize));
                }
            }
            CodeRepr::Packed { words } => {
                let w = self.width as usize;
                for i in 0..self.len() {
                    out.push(if self.is_null_at(i) {
                        NULL_CODE
                    } else if w == 0 {
                        0
                    } else {
                        unpack(words, w, i)
                    });
                }
            }
        }
    }

    /// Decode this block **straight into a mixed-radix cell buffer**: for
    /// every row `i`, add `table[code] * stride` (or `other * stride` for
    /// codes outside the table — NULLs included, since `NULL_CODE` is out
    /// of range) to `out[i]`. This is the cube kernel's per-dimension
    /// decode: no intermediate `Vec<u32>` of codes is materialized, and RLE
    /// runs add their constant contribution over the whole run span.
    ///
    /// `out` may be shorter than the block (a visibility watermark can cut
    /// the tail block mid-way): only `out.len()` rows are decoded.
    /// `table`/`other`/`stride` are the dimension's dense-code LUT exactly
    /// as in the plain scan path.
    pub fn add_dense_into(&self, table: &[u8], other: u8, stride: u32, out: &mut [u32]) {
        let lookup = |code: u32| -> u32 {
            let dense = if (code as usize) < table.len() {
                table[code as usize]
            } else {
                other
            };
            dense as u32 * stride
        };
        match &self.repr {
            CodeRepr::Rle { runs } => {
                let mut pos = 0usize;
                for &(code, n) in runs.iter() {
                    if pos >= out.len() {
                        break;
                    }
                    let end = (pos + n as usize).min(out.len());
                    let add = lookup(code);
                    for slot in &mut out[pos..end] {
                        *slot += add;
                    }
                    pos = end;
                }
            }
            CodeRepr::Packed { words } => {
                let w = self.width as usize;
                for (i, slot) in out.iter_mut().enumerate().take(self.len()) {
                    let code = if self.is_null_at(i) {
                        NULL_CODE
                    } else if w == 0 {
                        0
                    } else {
                        unpack(words, w, i)
                    };
                    *slot += lookup(code);
                }
            }
        }
    }
}

/// Extract the `i`-th `w`-bit code from little-endian packed `words`
/// (`0 < w <= 32`).
#[inline]
fn unpack(words: &[u64], w: usize, i: usize) -> u32 {
    let bit = i * w;
    let (word, off) = (bit / 64, bit % 64);
    let mut v = words[word] >> off;
    if off + w > 64 {
        v |= words[word + 1] << (64 - off);
    }
    (v & (u64::MAX >> (64 - w))) as u32
}

/// The sealed, block-encoded view of one column
/// ([`crate::table::Table::seal`] builds one per column).
#[derive(Debug, Clone)]
pub enum ColumnEncoding {
    /// Dictionary-coded column: compressed code blocks with zone maps.
    Codes {
        /// Column-wide packed width, `ceil(log2(dict_len))` bits.
        width: u8,
        blocks: Vec<CodeBlock>,
    },
    /// Numeric column: per-block zone maps over the plain values.
    Numeric { zones: Vec<NumZone> },
}

impl ColumnEncoding {
    /// Encode one column into blocks of [`BLOCK_ROWS`] rows.
    pub fn build(col: &ColumnData) -> ColumnEncoding {
        match col {
            ColumnData::Str { codes, dict } => {
                let width = code_width(dict.len());
                ColumnEncoding::Codes {
                    width,
                    blocks: codes
                        .chunks(BLOCK_ROWS)
                        .map(|chunk| CodeBlock::encode(chunk, width))
                        .collect(),
                }
            }
            ColumnData::Int(values) => ColumnEncoding::Numeric {
                zones: values
                    .chunks(BLOCK_ROWS)
                    .map(|chunk| num_zone(chunk.iter().map(|v| v.map(|i| i as f64))))
                    .collect(),
            },
            ColumnData::Float(values) => ColumnEncoding::Numeric {
                zones: values
                    .chunks(BLOCK_ROWS)
                    .map(|chunk| num_zone(chunk.iter().copied()))
                    .collect(),
            },
        }
    }

    /// The code blocks, for dictionary-coded columns.
    pub fn code_blocks(&self) -> Option<&[CodeBlock]> {
        match self {
            ColumnEncoding::Codes { blocks, .. } => Some(blocks),
            ColumnEncoding::Numeric { .. } => None,
        }
    }

    /// Blocks in this encoding.
    pub fn block_count(&self) -> usize {
        match self {
            ColumnEncoding::Codes { blocks, .. } => blocks.len(),
            ColumnEncoding::Numeric { zones } => zones.len(),
        }
    }

    /// NULL rows in block `b` — the one zone-map field every column kind
    /// shares, which is what `COUNT(col)` bulk application needs.
    pub fn block_null_count(&self, b: usize) -> u32 {
        match self {
            ColumnEncoding::Codes { blocks, .. } => blocks[b].zone().null_count,
            ColumnEncoding::Numeric { zones } => zones[b].null_count,
        }
    }

    /// NULL rows among the first `n` rows of block `b`. Exact for
    /// dictionary-coded columns; `None` for numeric zone-only encodings,
    /// whose blocks carry no per-row data (callers count from the plain
    /// column instead).
    pub fn prefix_null_count(&self, b: usize, n: usize) -> Option<u32> {
        match self {
            ColumnEncoding::Codes { blocks, .. } => Some(blocks[b].prefix_null_count(n)),
            ColumnEncoding::Numeric { .. } => None,
        }
    }

    /// Extend this encoding in place after rows were appended to `col`
    /// (which previously had `old_rows` rows).
    ///
    /// Blocks fully covered by the first `old_rows` rows are kept verbatim —
    /// appends never rewrite sealed history — and only the (possibly
    /// partial) trailing block plus the new rows are re-encoded. The one
    /// exception is a string column whose dictionary grew past a power of
    /// two: the packed code width changes column-wide, so the whole
    /// encoding is rebuilt.
    pub fn extend(&mut self, col: &ColumnData, old_rows: usize) {
        let keep = old_rows / BLOCK_ROWS;
        match (&mut *self, col) {
            (ColumnEncoding::Codes { width, blocks }, ColumnData::Str { codes, dict })
                if code_width(dict.len()) == *width =>
            {
                blocks.truncate(keep);
                for chunk in codes[keep * BLOCK_ROWS..].chunks(BLOCK_ROWS) {
                    blocks.push(CodeBlock::encode(chunk, *width));
                }
            }
            (ColumnEncoding::Numeric { zones }, ColumnData::Int(values)) => {
                zones.truncate(keep);
                zones.extend(
                    values[keep * BLOCK_ROWS..]
                        .chunks(BLOCK_ROWS)
                        .map(|chunk| num_zone(chunk.iter().map(|v| v.map(|i| i as f64)))),
                );
            }
            (ColumnEncoding::Numeric { zones }, ColumnData::Float(values)) => {
                zones.truncate(keep);
                zones.extend(
                    values[keep * BLOCK_ROWS..]
                        .chunks(BLOCK_ROWS)
                        .map(|chunk| num_zone(chunk.iter().copied())),
                );
            }
            // Width change or mismatched shapes: rebuild from scratch.
            _ => *self = ColumnEncoding::build(col),
        }
    }

    /// Total encoded payload bytes (0 for numeric zone-only encodings,
    /// whose values stay in the plain column).
    pub fn encoded_bytes(&self) -> u64 {
        match self {
            ColumnEncoding::Codes { blocks, .. } => {
                blocks.iter().map(CodeBlock::encoded_bytes).sum()
            }
            ColumnEncoding::Numeric { .. } => 0,
        }
    }
}

fn num_zone(values: impl Iterator<Item = Option<f64>>) -> NumZone {
    let mut zone = NumZone {
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
        null_count: 0,
    };
    for v in values {
        match v {
            Some(v) => {
                zone.min = zone.min.min(v);
                zone.max = zone.max.max(v);
            }
            None => zone.null_count += 1,
        }
    }
    zone
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use proptest::prelude::*;

    fn round_trip(codes: &[u32], width: u8) -> Vec<u32> {
        let block = CodeBlock::encode(codes, width);
        assert_eq!(block.len(), codes.len());
        let mut out = Vec::new();
        block.decode_into(&mut out);
        out
    }

    #[test]
    fn partition_ranges_are_block_aligned_and_cover_exactly() {
        // Small, zero, and span-disabled relations are one partition.
        assert_eq!(partition_ranges(0, 64), vec![0..0]);
        assert_eq!(partition_ranges(100, 64), vec![0..100]);
        assert_eq!(partition_ranges(1_000_000, 0), vec![0..1_000_000]);
        assert_eq!(
            partition_ranges(64 * BLOCK_ROWS, 64),
            vec![0..64 * BLOCK_ROWS],
            "a relation that exactly fills one span stays monolithic"
        );
        // One row over the span starts a second partition.
        let ranges = partition_ranges(64 * BLOCK_ROWS + 1, 64);
        assert_eq!(
            ranges,
            vec![0..64 * BLOCK_ROWS, 64 * BLOCK_ROWS..64 * BLOCK_ROWS + 1]
        );
    }

    proptest! {
        #[test]
        fn partition_ranges_partition_the_row_space(
            n_rows in 0usize..600_000,
            partition_blocks in 0usize..100,
        ) {
            let ranges = partition_ranges(n_rows, partition_blocks);
            // Contiguous cover of 0..n_rows in ascending order.
            prop_assert_eq!(ranges[0].start, 0);
            prop_assert_eq!(ranges[ranges.len() - 1].end, n_rows);
            for pair in ranges.windows(2) {
                prop_assert_eq!(pair[0].end, pair[1].start);
                prop_assert!(!pair[0].is_empty());
            }
            // Every boundary except the relation's end is block-aligned.
            for r in &ranges[..ranges.len() - 1] {
                prop_assert_eq!(r.end % BLOCK_ROWS, 0);
            }
            // Pure function of (n_rows, partition_blocks).
            prop_assert_eq!(&ranges, &partition_ranges(n_rows, partition_blocks));
        }
    }

    #[test]
    fn code_width_matches_dictionary_sizes() {
        assert_eq!(code_width(0), 0);
        assert_eq!(code_width(1), 0);
        assert_eq!(code_width(2), 1);
        assert_eq!(code_width(5), 3);
        assert_eq!(code_width(256), 8);
        assert_eq!(code_width(257), 9);
        assert_eq!(code_width(1 << 20), 20);
    }

    #[test]
    fn packed_round_trip_every_width() {
        // All widths 1..=32, including codes that straddle word boundaries,
        // plus the 0-bit constant-column case.
        for width in 0u8..=32 {
            let max = if width == 0 { 0 } else { (1u64 << width) - 1 };
            let codes: Vec<u32> = (0..131u64)
                .map(|i| (i * 2654435761 % (max + 1)) as u32)
                .collect();
            assert_eq!(round_trip(&codes, width), codes, "width {width}");
        }
    }

    #[test]
    fn nulls_round_trip_in_both_representations() {
        // Alternating values force the packed path; the bitmap restores
        // NULL_CODE exactly.
        let packed: Vec<u32> = (0..200u32)
            .map(|i| if i % 3 == 0 { NULL_CODE } else { i % 7 })
            .collect();
        assert_eq!(round_trip(&packed, 3), packed);
        // Long runs force RLE; NULL runs are stored as NULL_CODE runs.
        let mut rle = vec![4u32; 600];
        rle.extend(vec![NULL_CODE; 600]);
        rle.extend(vec![1u32; 600]);
        let block = CodeBlock::encode(&rle, 3);
        assert!(matches!(block.repr, CodeRepr::Rle { .. }));
        assert_eq!(round_trip(&rle, 3), rle);
    }

    #[test]
    fn representation_choice_tracks_encoded_size() {
        // 2048 alternating 10-bit codes: packed = 2048*10/8 = 2560 B,
        // RLE = 2048 runs * 8 B — packed must win.
        let alternating: Vec<u32> = (0..BLOCK_ROWS as u32).map(|i| 512 + i % 2).collect();
        let block = CodeBlock::encode(&alternating, 10);
        assert!(matches!(block.repr, CodeRepr::Packed { .. }));
        assert_eq!(
            block.encoded_bytes(),
            (BLOCK_ROWS * 10 / 64).div_ceil(1) as u64 * 8
        );

        // One constant run beats any packing.
        let constant = vec![7u32; BLOCK_ROWS];
        let block = CodeBlock::encode(&constant, 10);
        assert!(matches!(block.repr, CodeRepr::Rle { .. }));
        assert_eq!(block.encoded_bytes(), 8);
        assert_eq!(block.constant_code(), Some(7));
    }

    #[test]
    fn zone_maps_summarize_blocks() {
        let codes = [5u32, 5, 9, NULL_CODE, 2, 2, 2];
        let block = CodeBlock::encode(&codes, 4);
        let zone = block.zone();
        assert_eq!((zone.min_code, zone.max_code), (2, 9));
        assert_eq!(zone.null_count, 1);
        assert_eq!(zone.run_count, 4);
        assert_eq!(block.constant_code(), None);

        let all_null = CodeBlock::encode(&[NULL_CODE; 4], 4);
        assert!(all_null.zone().min_code > all_null.zone().max_code);
        assert_eq!(all_null.constant_code(), Some(NULL_CODE));
    }

    #[test]
    fn add_dense_into_matches_plain_lookup() {
        let codes: Vec<u32> = (0..500u32)
            .map(|i| if i % 11 == 0 { NULL_CODE } else { i % 6 })
            .collect();
        // LUT: codes 1 and 4 are literals 0 and 1, everything else OTHER=2.
        let table = [2u8, 0, 2, 2, 1, 2];
        let (other, stride) = (2u8, 5u32);
        for force_rle in [false, true] {
            let data: Vec<u32> = if force_rle {
                codes.iter().flat_map(|&c| [c; 4]).collect()
            } else {
                codes.clone()
            };
            let block = CodeBlock::encode(&data, 3);
            let mut out = vec![100u32; data.len()];
            block.add_dense_into(&table, other, stride, &mut out);
            for (i, &code) in data.iter().enumerate() {
                let dense = if (code as usize) < table.len() {
                    table[code as usize]
                } else {
                    other
                };
                assert_eq!(out[i], 100 + dense as u32 * stride, "row {i}");
            }
        }
    }

    #[test]
    fn prefix_null_count_is_exact_for_both_representations() {
        // Packed with a null bitmap: NULLs at every third row.
        let packed: Vec<u32> = (0..200u32)
            .map(|i| if i % 3 == 0 { NULL_CODE } else { i % 7 })
            .collect();
        let block = CodeBlock::encode(&packed, 3);
        assert!(matches!(block.repr, CodeRepr::Packed { .. }));
        for n in [0, 1, 63, 64, 65, 100, 127, 128, 199, 200] {
            let expect = packed[..n].iter().filter(|&&c| c == NULL_CODE).count() as u32;
            assert_eq!(block.prefix_null_count(n), expect, "packed prefix {n}");
        }
        // RLE with NULL runs.
        let mut rle = vec![4u32; 600];
        rle.extend(vec![NULL_CODE; 600]);
        rle.extend(vec![1u32; 600]);
        let block = CodeBlock::encode(&rle, 3);
        assert!(matches!(block.repr, CodeRepr::Rle { .. }));
        for n in [0, 599, 600, 601, 1200, 1300, 1800] {
            let expect = rle[..n].iter().filter(|&&c| c == NULL_CODE).count() as u32;
            assert_eq!(block.prefix_null_count(n), expect, "rle prefix {n}");
        }
        // Packed without a bitmap (no NULLs at all).
        let dense: Vec<u32> = (0..100).map(|i| i % 2).collect();
        let block = CodeBlock::encode(&dense, 1);
        assert_eq!(block.prefix_null_count(50), 0);
        // n past the block length clamps to the zone count.
        assert_eq!(block.prefix_null_count(10_000), 0);
    }

    #[test]
    fn add_dense_into_clamps_to_short_output() {
        // A watermark mid-block hands the decoder an `out` shorter than the
        // block; both representations must stop at out.len().
        let table = [0u8, 1];
        for force_rle in [false, true] {
            let data: Vec<u32> = if force_rle {
                (0..500u32).flat_map(|i| [i % 2; 50]).take(2000).collect()
            } else {
                (0..2000u32).map(|i| i % 2).collect()
            };
            let block = CodeBlock::encode(&data, 1);
            let visible = 777usize;
            let mut out = vec![0u32; visible];
            block.add_dense_into(&table, 2, 1, &mut out);
            for (i, &got) in out.iter().enumerate() {
                assert_eq!(
                    got, table[data[i] as usize] as u32,
                    "row {i} rle={force_rle}"
                );
            }
        }
    }

    #[test]
    fn extend_matches_full_rebuild() {
        // String column, dictionary stable across the append (same width).
        let mut col = ColumnData::new(crate::value::DataType::Str);
        for i in 0..(2 * BLOCK_ROWS + 700) {
            col.push(&Value::Str(format!("v{}", i % 3)));
        }
        let mut enc = ColumnEncoding::build(&col);
        let old_rows = col.len();
        for i in 0..(BLOCK_ROWS + 11) {
            col.push(&Value::Str(format!("v{}", i % 3)));
        }
        enc.extend(&col, old_rows);
        let fresh = ColumnEncoding::build(&col);
        assert_eq!(enc.block_count(), fresh.block_count());
        let (a, b) = (enc.code_blocks().unwrap(), fresh.code_blocks().unwrap());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let (mut dx, mut dy) = (Vec::new(), Vec::new());
            x.decode_into(&mut dx);
            y.decode_into(&mut dy);
            assert_eq!(dx, dy, "block {i}");
            assert_eq!(x.zone(), y.zone(), "zone {i}");
        }

        // Dictionary growth past a power of two forces a full rebuild.
        let mut col = ColumnData::new(crate::value::DataType::Str);
        col.push(&Value::Str("a".into()));
        col.push(&Value::Str("b".into()));
        let mut enc = ColumnEncoding::build(&col);
        let old_rows = col.len();
        col.push(&Value::Str("c".into())); // dict 2 → 3: width 1 → 2
        enc.extend(&col, old_rows);
        match &enc {
            ColumnEncoding::Codes { width, blocks } => {
                assert_eq!(*width, 2);
                let mut d = Vec::new();
                blocks[0].decode_into(&mut d);
                assert_eq!(d, vec![0, 1, 2]);
            }
            _ => panic!("string column"),
        }

        // Numeric column: zones truncated and rebuilt over the tail.
        let mut col = ColumnData::new(crate::value::DataType::Int);
        for i in 0..(BLOCK_ROWS + 5) {
            col.push(&Value::Int(i as i64));
        }
        let mut enc = ColumnEncoding::build(&col);
        let old_rows = col.len();
        col.push(&Value::Null);
        col.push(&Value::Int(-100));
        enc.extend(&col, old_rows);
        match &enc {
            ColumnEncoding::Numeric { zones } => {
                assert_eq!(zones.len(), 2);
                assert_eq!(zones[1].min, -100.0);
                assert_eq!(zones[1].null_count, 1);
            }
            _ => panic!("int column"),
        }
    }

    #[test]
    fn column_encoding_covers_all_types() {
        let mut str_col = ColumnData::new(crate::value::DataType::Str);
        for i in 0..(BLOCK_ROWS + 10) {
            str_col.push(&Value::Str(format!("v{}", i % 3)));
        }
        let enc = ColumnEncoding::build(&str_col);
        assert_eq!(enc.block_count(), 2);
        let blocks = enc.code_blocks().unwrap();
        assert_eq!(blocks[0].len(), BLOCK_ROWS);
        assert_eq!(blocks[1].len(), 10);

        let mut int_col = ColumnData::new(crate::value::DataType::Int);
        int_col.push(&Value::Int(3));
        int_col.push(&Value::Null);
        int_col.push(&Value::Int(-7));
        let enc = ColumnEncoding::build(&int_col);
        assert_eq!(enc.block_count(), 1);
        assert_eq!(enc.block_null_count(0), 1);
        match enc {
            ColumnEncoding::Numeric { ref zones } => {
                assert_eq!((zones[0].min, zones[0].max), (-7.0, 3.0));
            }
            _ => panic!("int column must get numeric zones"),
        }
        assert_eq!(
            enc.encoded_bytes(),
            0,
            "numeric values stay in the plain column"
        );
    }

    proptest! {
        /// plain → encode (either representation) → decode is the identity
        /// for every width 0..=32, block-boundary lengths, and NULL mixes.
        #[test]
        fn encode_decode_round_trips(
            width in 0u8..=32,
            len in 1usize..600,
            null_period in 0u32..5,
            run_stretch in 1usize..9,
        ) {
            let max = if width == 0 { 0 } else { (1u64 << width) - 1 };
            let codes: Vec<u32> = (0..len as u64)
                .flat_map(|i| {
                    let code = if null_period > 0 && i % null_period as u64 == 0 {
                        NULL_CODE
                    } else {
                        ((i * 2654435761) % (max + 1)) as u32
                    };
                    std::iter::repeat_n(code, run_stretch)
                })
                .take(BLOCK_ROWS)
                .collect();
            prop_assert_eq!(round_trip(&codes, width), codes);
        }

        /// Zone maps are exact: recomputing from raw codes agrees.
        #[test]
        fn zone_maps_are_exact(raw in prop::collection::vec(0u32..55, 1..300)) {
            // Values ≥ 50 stand in for NULL (shim has no prop_oneof).
            let codes: Vec<u32> = raw.iter().map(|&c| if c >= 50 { NULL_CODE } else { c }).collect();
            let block = CodeBlock::encode(&codes, 6);
            let zone = block.zone();
            let non_null: Vec<u32> = codes.iter().copied().filter(|&c| c != NULL_CODE).collect();
            prop_assert_eq!(zone.null_count as usize, codes.len() - non_null.len());
            if non_null.is_empty() {
                prop_assert!(zone.min_code > zone.max_code);
            } else {
                prop_assert_eq!(zone.min_code, *non_null.iter().min().unwrap());
                prop_assert_eq!(zone.max_code, *non_null.iter().max().unwrap());
            }
            let mut run_count = 0u32;
            let mut prev = None;
            for &c in &codes {
                if prev != Some(c) {
                    run_count += 1;
                    prev = Some(c);
                }
            }
            prop_assert_eq!(zone.run_count, run_count);
        }
    }
}
