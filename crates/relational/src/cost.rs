//! A simple evaluation cost model (§6.1).
//!
//! `PickScope` in the paper *"uses a cost model that takes into account the
//! size of the database as well as the number of claims to verify"* and
//! expands the evaluation scope, prioritizing likely alternatives, until the
//! estimated cost reaches a threshold. This module provides those estimates.
//!
//! Costs are in abstract *work units* roughly proportional to cells touched:
//! scanning R rows with d cube dimensions and a aggregates costs
//! `R · (d + a)`, plus rollup work proportional to the number of finest
//! groups times `2^d`.

use crate::cube::CubeQuery;
use crate::database::{ColumnRef, Database};

/// Cost model over a fixed database.
#[derive(Debug, Clone)]
pub struct CostModel {
    row_counts: Vec<usize>,
}

impl CostModel {
    pub fn new(db: &Database) -> Self {
        Self {
            row_counts: db.tables().iter().map(|t| t.row_count()).collect(),
        }
    }

    /// Estimated output rows of an equi-join over `tables`. PK-FK joins do
    /// not multiply cardinalities: the fact side bounds the output, so we
    /// use the maximum member size.
    pub fn join_rows(&self, tables: &[usize]) -> usize {
        tables
            .iter()
            .map(|&t| self.row_counts.get(t).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    /// Estimated cost of one cube execution.
    pub fn cube_cost(&self, cube: &CubeQuery) -> f64 {
        let rows = self.join_rows(&cube.tables_referenced()) as f64;
        let d = cube.dims.len() as f64;
        let a = cube.aggregates.len() as f64;
        // Finest group estimate: product of (relevant literals + OTHER).
        let finest: f64 = cube
            .relevant
            .iter()
            .map(|lits| (lits.len() + 1) as f64)
            .product();
        let rollup = finest * (2f64).powi(cube.dims.len() as i32);
        rows * (d + a) + rollup
    }

    /// Estimated cost of evaluating one simple aggregate query naively.
    pub fn naive_query_cost(&self, tables: &[usize], n_predicates: usize) -> f64 {
        self.join_rows(tables) as f64 * (n_predicates as f64 + 1.0)
    }

    /// A scope budget scaled to the document: the paper evaluates tens of
    /// thousands of candidates per article, so the default budget allows
    /// roughly `budget_per_claim` work units per claim.
    pub fn scope_budget(&self, n_claims: usize, budget_per_claim: f64) -> f64 {
        (n_claims.max(1) as f64) * budget_per_claim
    }

    /// Estimated cost of grouping on `dims` over the whole database (used
    /// when ranking which predicate columns to admit into the scope).
    pub fn dims_cost(&self, db: &Database, dims: &[ColumnRef]) -> f64 {
        let tables: Vec<usize> = {
            let mut t: Vec<usize> = dims.iter().map(|d| d.table).collect();
            t.sort_unstable();
            t.dedup();
            if t.is_empty() {
                t.push(0);
            }
            t
        };
        let rows = self.join_rows(&tables) as f64;
        let distinct: f64 = dims
            .iter()
            .map(|d| db.column(*d).distinct_count().max(1) as f64)
            .product::<f64>()
            .min(rows.max(1.0));
        rows + distinct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AggColumn, AggFunction};
    use crate::table::Table;
    use crate::value::Value;

    fn db() -> Database {
        let big = Table::from_columns(
            "big",
            vec![("x", (0..1000).map(Value::Int).collect::<Vec<_>>())],
        )
        .unwrap();
        let small = Table::from_columns("small", vec![("y", vec![Value::Int(1)])]).unwrap();
        let mut db = Database::new("d");
        db.add_table(big);
        db.add_table(small);
        db
    }

    #[test]
    fn join_rows_uses_largest_member() {
        let m = CostModel::new(&db());
        assert_eq!(m.join_rows(&[0]), 1000);
        assert_eq!(m.join_rows(&[0, 1]), 1000);
        assert_eq!(m.join_rows(&[1]), 1);
    }

    #[test]
    fn cube_cost_grows_with_dims_and_aggregates() {
        let d = db();
        let m = CostModel::new(&d);
        let x = d.resolve("big", "x").unwrap();
        let one_dim = CubeQuery {
            dims: vec![x],
            relevant: vec![vec![Value::Int(1)]],
            aggregates: vec![(AggFunction::Count, AggColumn::Star)],
        };
        let two_dim = CubeQuery {
            dims: vec![x, x],
            relevant: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            aggregates: vec![
                (AggFunction::Count, AggColumn::Star),
                (AggFunction::Sum, AggColumn::Column(x)),
            ],
        };
        assert!(m.cube_cost(&two_dim) > m.cube_cost(&one_dim));
    }

    #[test]
    fn scope_budget_scales_with_claims() {
        let m = CostModel::new(&db());
        assert!(m.scope_budget(10, 1e5) > m.scope_budget(2, 1e5));
        assert_eq!(m.scope_budget(0, 1e5), 1e5, "at least one claim's worth");
    }

    #[test]
    fn naive_cost_scales_with_predicates() {
        let m = CostModel::new(&db());
        assert!(m.naive_query_cost(&[0], 3) > m.naive_query_cost(&[0], 1));
    }
}
