//! A table: schema plus columnar data.

use crate::block::ColumnEncoding;
use crate::column::ColumnData;
use crate::error::{RelationalError, Result};
use crate::schema::{ColumnMeta, TableSchema};
use crate::value::Value;

/// A materialized table.
#[derive(Debug, Clone)]
pub struct Table {
    pub schema: TableSchema,
    columns: Vec<ColumnData>,
    row_count: usize,
    /// Row-visibility watermark: scans see rows `0..watermark` only. Every
    /// mutation path keeps `watermark == row_count` (appends publish
    /// immediately); [`Table::set_watermark`] can pin visibility lower,
    /// which is how a scan observes a partially-visible tail block.
    watermark: usize,
    /// Block encodings built by [`Table::seal`]; `None` while the table is
    /// still mutable (any [`Table::push_row`] invalidates them —
    /// [`Table::append_rows`] instead extends them in place).
    encodings: Option<Vec<ColumnEncoding>>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        let columns = schema
            .columns
            .iter()
            .map(|c| ColumnData::new(c.data_type))
            .collect();
        Self {
            schema,
            columns,
            row_count: 0,
            watermark: 0,
            encodings: None,
        }
    }

    /// Build a table from a name and `(column name, values)` pairs; the
    /// column type is taken from the first non-null value. Convenient for
    /// tests and the hand-built corpus data sets.
    pub fn from_columns(name: impl Into<String>, columns: Vec<(&str, Vec<Value>)>) -> Result<Self> {
        let name = name.into();
        let n_rows = columns.first().map(|(_, v)| v.len()).unwrap_or(0);
        let mut metas = Vec::with_capacity(columns.len());
        for (col_name, values) in &columns {
            if values.len() != n_rows {
                return Err(RelationalError::InvalidSchema(format!(
                    "column {col_name} has {} rows, expected {n_rows}",
                    values.len()
                )));
            }
            let dt = values
                .iter()
                .find_map(|v| v.kind())
                .unwrap_or(crate::value::DataType::Str);
            metas.push(ColumnMeta::new(*col_name, dt));
        }
        let mut table = Table::new(TableSchema::new(name, metas));
        for row in 0..n_rows {
            let vals: Vec<Value> = columns.iter().map(|(_, v)| v[row].clone()).collect();
            table.push_row(&vals)?;
        }
        table.seal();
        Ok(table)
    }

    /// Build the compressed block encodings ([`crate::block`]) for every
    /// column. Idempotent; called automatically when a table reaches its
    /// read-only serving form (`from_columns`, the CSV loader,
    /// [`crate::database::Database::add_table`]). The fused scan kernel
    /// uses the encodings when present and falls back to the plain columns
    /// otherwise — results are bit-identical either way.
    pub fn seal(&mut self) {
        if self.encodings.is_none() {
            self.encodings = Some(self.columns.iter().map(ColumnEncoding::build).collect());
        }
    }

    /// Drop the block encodings, forcing scans back onto the plain
    /// columnar path. Exists for A/B comparison (encoded ≡ plain tests and
    /// benches); production tables stay sealed.
    pub fn unseal(&mut self) {
        self.encodings = None;
    }

    /// Per-column block encodings, if the table is sealed.
    pub fn encodings(&self) -> Option<&[ColumnEncoding]> {
        self.encodings.as_deref()
    }

    pub fn name(&self) -> &str {
        &self.schema.name
    }

    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Rows visible to scans: `min(watermark, row_count)`. Everything above
    /// the watermark is physically present but invisible, which is what
    /// lets a snapshot pinned at an older watermark ignore concurrent
    /// appends.
    #[inline]
    pub fn visible_rows(&self) -> usize {
        self.watermark.min(self.row_count)
    }

    /// Pin the visibility watermark (clamped to the physical row count).
    /// Appends re-publish automatically; this exists so tests and snapshot
    /// machinery can place the watermark mid-block.
    pub fn set_watermark(&mut self, rows: usize) {
        self.watermark = rows.min(self.row_count);
    }

    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// The physical data of column `idx`.
    pub fn column(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    /// The physical data of the column with the given name.
    pub fn column_by_name(&self, name: &str) -> Option<&ColumnData> {
        self.schema.column_index(name).map(|i| &self.columns[i])
    }

    /// Append one row. Values must match the column types (numeric widening
    /// and string coercion are handled by [`ColumnData::push`]); a mismatch
    /// stores NULL and is reported via the `Err` variant only when the value
    /// is entirely incompatible.
    pub fn push_row(&mut self, values: &[Value]) -> Result<()> {
        self.push_row_values(values)?;
        self.watermark = self.row_count;
        self.encodings = None;
        Ok(())
    }

    /// Append rows while **staying sealed**: new storage blocks are encoded
    /// for the tail instead of dropping the encodings, and the watermark
    /// advances to publish the rows. Sealed history is never rewritten —
    /// only the partial trailing block (if any) is re-encoded. All-or-
    /// nothing: row shapes are validated before anything is stored.
    ///
    /// Returns the number of rows appended.
    pub fn append_rows(&mut self, rows: &[Vec<Value>]) -> Result<usize> {
        for row in rows {
            if row.len() != self.columns.len() {
                return Err(RelationalError::InvalidSchema(format!(
                    "row has {} values, table {} has {} columns",
                    row.len(),
                    self.schema.name,
                    self.columns.len()
                )));
            }
        }
        let old_rows = self.row_count;
        for row in rows {
            self.push_row_values(row)?;
        }
        if let Some(encodings) = &mut self.encodings {
            for (enc, col) in encodings.iter_mut().zip(&self.columns) {
                enc.extend(col, old_rows);
            }
        }
        self.watermark = self.row_count;
        Ok(rows.len())
    }

    /// Push one row's cells and bump the row count; callers decide what
    /// happens to the watermark and the encodings.
    fn push_row_values(&mut self, values: &[Value]) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(RelationalError::InvalidSchema(format!(
                "row has {} values, table {} has {} columns",
                values.len(),
                self.schema.name,
                self.columns.len()
            )));
        }
        for (col, val) in self.columns.iter_mut().zip(values) {
            if !col.push(val) {
                // Incompatible cell (e.g. text in an int column): store NULL
                // so the row stays rectangular. Type inference in the CSV
                // loader avoids this path for well-formed files.
                col.push(&Value::Null);
            }
        }
        self.row_count += 1;
        Ok(())
    }

    /// The cell at (`row`, `col`).
    pub fn get(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Indices of numeric columns (candidates for aggregation columns).
    pub fn numeric_columns(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_numeric())
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn sample() -> Table {
        Table::from_columns(
            "nflsuspensions",
            vec![
                ("name", vec!["rice".into(), "gordon".into(), "hardy".into()]),
                ("games", vec!["indef".into(), "indef".into(), "10".into()]),
                (
                    "year",
                    vec![Value::Int(2014), Value::Int(2014), Value::Int(2014)],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_and_read_back() {
        let t = sample();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column_count(), 3);
        assert_eq!(t.get(0, 0), Value::Str("rice".into()));
        assert_eq!(t.get(2, 2), Value::Int(2014));
    }

    #[test]
    fn numeric_columns_detected() {
        let t = sample();
        assert_eq!(t.numeric_columns(), vec![2]);
        assert_eq!(t.column(2).data_type(), DataType::Int);
    }

    #[test]
    fn mismatched_row_length_rejected() {
        let mut t = sample();
        let err = t.push_row(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, RelationalError::InvalidSchema(_)));
    }

    #[test]
    fn ragged_columns_rejected() {
        let r = Table::from_columns("bad", vec![("a", vec![Value::Int(1)]), ("b", vec![])]);
        assert!(r.is_err());
    }

    #[test]
    fn column_by_name_is_case_insensitive() {
        let t = sample();
        assert!(t.column_by_name("GAMES").is_some());
        assert!(t.column_by_name("missing").is_none());
    }

    #[test]
    fn sealing_builds_encodings_and_push_row_invalidates() {
        let mut t = sample();
        let enc = t.encodings().expect("from_columns seals");
        assert_eq!(enc.len(), t.column_count());
        assert_eq!(enc[0].block_count(), 1);
        t.push_row(&["x".into(), "1".into(), Value::Int(2015)])
            .unwrap();
        assert!(t.encodings().is_none(), "mutation must invalidate");
        t.seal();
        assert!(t.encodings().is_some());
        t.unseal();
        assert!(t.encodings().is_none());
    }

    #[test]
    fn append_rows_stays_sealed_and_publishes() {
        let mut t = sample();
        assert_eq!(t.visible_rows(), 3);
        let n = t
            .append_rows(&[
                vec!["x".into(), "2".into(), Value::Int(2015)],
                vec!["y".into(), "4".into(), Value::Int(2016)],
            ])
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(t.row_count(), 5);
        assert_eq!(t.visible_rows(), 5, "appends publish immediately");
        let enc = t.encodings().expect("append must keep the table sealed");
        assert_eq!(enc[0].block_count(), 1);
        // The extended encodings match a from-scratch seal.
        let mut cold = t.clone();
        cold.unseal();
        cold.seal();
        for (a, b) in enc.iter().zip(cold.encodings().unwrap()) {
            match (a, b) {
                (
                    ColumnEncoding::Codes { blocks: x, .. },
                    ColumnEncoding::Codes { blocks: y, .. },
                ) => {
                    assert_eq!(x.len(), y.len());
                    for (bx, by) in x.iter().zip(y) {
                        let (mut dx, mut dy) = (Vec::new(), Vec::new());
                        bx.decode_into(&mut dx);
                        by.decode_into(&mut dy);
                        assert_eq!(dx, dy);
                    }
                }
                (ColumnEncoding::Numeric { zones: x }, ColumnEncoding::Numeric { zones: y }) => {
                    assert_eq!(x, y)
                }
                _ => panic!("encoding kind changed across append"),
            }
        }
    }

    #[test]
    fn append_rows_is_all_or_nothing_on_shape_errors() {
        let mut t = sample();
        let err = t.append_rows(&[
            vec!["x".into(), "2".into(), Value::Int(2015)],
            vec![Value::Int(1)],
        ]);
        assert!(err.is_err());
        assert_eq!(t.row_count(), 3, "no partial append");
        assert!(t.encodings().is_some());
    }

    #[test]
    fn watermark_clamps_and_pins_visibility() {
        let mut t = sample();
        t.set_watermark(1);
        assert_eq!(t.visible_rows(), 1);
        assert_eq!(t.row_count(), 3, "physical rows unaffected");
        t.set_watermark(100);
        assert_eq!(t.visible_rows(), 3, "clamped to row_count");
        t.push_row(&["x".into(), "1".into(), Value::Int(2015)])
            .unwrap();
        assert_eq!(t.visible_rows(), 4, "push_row republishes everything");
    }

    #[test]
    fn incompatible_cell_becomes_null() {
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![ColumnMeta::new("n", DataType::Int)],
        ));
        t.push_row(&[Value::Str("oops".into())]).unwrap();
        assert_eq!(t.get(0, 0), Value::Null);
    }
}
