//! The query class of the paper (Definition 2): *simple aggregate queries*.
//!
//! `SELECT Fct(Agg) FROM T1 E-JOIN T2 ... WHERE C1 = V1 AND C2 = V2 AND ...`
//! — a single aggregate over an equi-join between tables connected via
//! primary-key/foreign-key constraints, filtered by a conjunction of unary
//! equality predicates.

use crate::database::{ColumnRef, Database};
use crate::error::{RelationalError, Result};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The aggregation functions supported by the AggChecker (§2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AggFunction {
    Count,
    CountDistinct,
    Sum,
    Avg,
    Min,
    Max,
    /// Share of rows satisfying the predicates among all rows, in percent.
    Percentage,
    /// `100 · |rows with all predicates| / |rows with the first predicate|`
    /// — the first predicate is the condition, the rest form the event
    /// (footnote 1 of the paper).
    ConditionalProbability,
    /// Median of a numeric column — an extension beyond the paper's eight
    /// functions, exercising its "we plan to gradually extend the scope"
    /// hook (§2).
    Median,
}

impl AggFunction {
    /// All supported functions, in a stable order. The paper's eight plus
    /// the `Median` extension.
    pub const ALL: [AggFunction; 9] = [
        AggFunction::Count,
        AggFunction::CountDistinct,
        AggFunction::Sum,
        AggFunction::Avg,
        AggFunction::Min,
        AggFunction::Max,
        AggFunction::Percentage,
        AggFunction::ConditionalProbability,
        AggFunction::Median,
    ];

    /// Stable index into [`AggFunction::ALL`].
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|f| *f == self).expect("in ALL")
    }

    /// SQL spelling.
    pub fn sql_name(self) -> &'static str {
        match self {
            AggFunction::Count => "Count",
            AggFunction::CountDistinct => "CountDistinct",
            AggFunction::Sum => "Sum",
            AggFunction::Avg => "Avg",
            AggFunction::Min => "Min",
            AggFunction::Max => "Max",
            AggFunction::Percentage => "Percentage",
            AggFunction::ConditionalProbability => "ConditionalProbability",
            AggFunction::Median => "Median",
        }
    }

    /// The fixed keyword set associated with this function fragment (§4.2:
    /// *"We associate each standard SQL aggregation function with a fixed
    /// keyword set"*). Keywords are stored unstemmed; the matching layer
    /// stems them together with the claim keywords.
    pub fn keywords(self) -> &'static [&'static str] {
        match self {
            AggFunction::Count => &["count", "number", "total", "many", "times", "amount"],
            AggFunction::CountDistinct => &[
                "count",
                "distinct",
                "unique",
                "different",
                "number",
                "separate",
            ],
            AggFunction::Sum => &["sum", "total", "combined", "overall", "altogether"],
            AggFunction::Avg => &["average", "mean", "typical", "typically", "expected", "per"],
            AggFunction::Min => &[
                "minimum", "least", "lowest", "smallest", "fewest", "shortest", "earliest",
            ],
            AggFunction::Max => &[
                "maximum", "most", "highest", "largest", "biggest", "longest", "latest", "top",
            ],
            AggFunction::Percentage => &[
                "percent",
                "percentage",
                "share",
                "proportion",
                "fraction",
                "rate",
            ],
            AggFunction::ConditionalProbability => &[
                "probability",
                "likelihood",
                "chance",
                "odds",
                "given",
                "conditional",
            ],
            AggFunction::Median => &["median", "middle", "midpoint", "halfway"],
        }
    }

    /// Whether this function needs a numeric aggregation column.
    /// `Count`/`CountDistinct`/`Percentage`/`ConditionalProbability` also
    /// accept `*` or categorical columns.
    pub fn requires_numeric_column(self) -> bool {
        matches!(
            self,
            AggFunction::Sum
                | AggFunction::Avg
                | AggFunction::Min
                | AggFunction::Max
                | AggFunction::Median
        )
    }

    /// Whether the aggregate is derived from counts of row subsets rather
    /// than from the aggregation column's values.
    pub fn is_ratio(self) -> bool {
        matches!(
            self,
            AggFunction::Percentage | AggFunction::ConditionalProbability
        )
    }
}

impl fmt::Display for AggFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// The aggregation column: either `*` or a concrete column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AggColumn {
    /// The "all column" `*` (only meaningful for count-like aggregates).
    Star,
    Column(ColumnRef),
}

impl AggColumn {
    pub fn as_column(self) -> Option<ColumnRef> {
        match self {
            AggColumn::Star => None,
            AggColumn::Column(c) => Some(c),
        }
    }
}

/// A unary equality predicate `column = value`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    pub column: ColumnRef,
    pub value: Value,
}

impl Predicate {
    pub fn new(column: ColumnRef, value: impl Into<Value>) -> Self {
        Self {
            column,
            value: value.into(),
        }
    }
}

/// A simple aggregate query (Definition 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimpleAggregateQuery {
    pub function: AggFunction,
    pub column: AggColumn,
    /// Conjunctive equality predicates. For
    /// [`AggFunction::ConditionalProbability`] the **first** predicate is the
    /// condition and the rest form the event.
    pub predicates: Vec<Predicate>,
}

impl SimpleAggregateQuery {
    pub fn new(function: AggFunction, column: AggColumn, predicates: Vec<Predicate>) -> Self {
        Self {
            function,
            column,
            predicates,
        }
    }

    /// Shorthand for `SELECT Count(*) FROM ... WHERE preds`.
    pub fn count_star(predicates: Vec<Predicate>) -> Self {
        Self::new(AggFunction::Count, AggColumn::Star, predicates)
    }

    /// Check structural validity against a database: distinct predicate
    /// columns, numeric aggregation column where required, conditional
    /// probability needs at least one predicate.
    pub fn validate(&self, db: &Database) -> Result<()> {
        if self.function.requires_numeric_column() {
            match self.column {
                AggColumn::Star => {
                    return Err(RelationalError::InvalidQuery(format!(
                        "{} requires a numeric column, not *",
                        self.function
                    )))
                }
                AggColumn::Column(c) => {
                    if !db.column(c).is_numeric() {
                        return Err(RelationalError::TypeMismatch {
                            column: db.column_name(c),
                            expected: "numeric column",
                        });
                    }
                }
            }
        }
        if self.function == AggFunction::ConditionalProbability && self.predicates.is_empty() {
            return Err(RelationalError::InvalidQuery(
                "conditional probability requires a condition predicate".into(),
            ));
        }
        for (i, p) in self.predicates.iter().enumerate() {
            for q in &self.predicates[i + 1..] {
                if p.column == q.column {
                    return Err(RelationalError::InvalidQuery(format!(
                        "duplicate predicate column {}",
                        db.column_name(p.column)
                    )));
                }
            }
        }
        Ok(())
    }

    /// Every table referenced by the aggregate or a predicate.
    pub fn tables_referenced(&self) -> Vec<usize> {
        let mut tables: Vec<usize> = Vec::new();
        if let AggColumn::Column(c) = self.column {
            tables.push(c.table);
        }
        for p in &self.predicates {
            tables.push(p.column.table);
        }
        tables.sort_unstable();
        tables.dedup();
        if tables.is_empty() {
            tables.push(0); // COUNT(*) with no predicates: default to table 0.
        }
        tables
    }

    /// Columns restricted by predicates, in predicate order.
    pub fn predicate_columns(&self) -> Vec<ColumnRef> {
        self.predicates.iter().map(|p| p.column).collect()
    }

    /// Semantic equality: same function and aggregation column, and the
    /// same predicate *set* (order-insensitive), except that for
    /// [`AggFunction::ConditionalProbability`] the condition (first)
    /// predicate must coincide. String literals compare case-insensitively,
    /// like the engine's dictionary interning.
    pub fn semantically_equal(&self, other: &SimpleAggregateQuery) -> bool {
        if self.function != other.function
            || self.column != other.column
            || self.predicates.len() != other.predicates.len()
        {
            return false;
        }
        let pred_eq = |a: &Predicate, b: &Predicate| {
            a.column == b.column
                && match (&a.value, &b.value) {
                    (Value::Str(x), Value::Str(y)) => x.eq_ignore_ascii_case(y),
                    (x, y) => x == y,
                }
        };
        if self.function == AggFunction::ConditionalProbability
            && !self
                .predicates
                .first()
                .zip(other.predicates.first())
                .is_some_and(|(a, b)| pred_eq(a, b))
        {
            return false;
        }
        self.predicates
            .iter()
            .all(|p| other.predicates.iter().any(|q| pred_eq(p, q)))
    }

    /// Render as SQL text (for logs, the UI, and tests).
    pub fn to_sql(&self, db: &Database) -> String {
        let agg = match self.column {
            AggColumn::Star => "*".to_string(),
            AggColumn::Column(c) => db.short_column_name(c).to_string(),
        };
        let tables = self.tables_referenced();
        let from = tables
            .iter()
            .map(|&t| db.table(t).name().to_string())
            .collect::<Vec<_>>()
            .join(" E-JOIN ");
        let mut sql = format!("SELECT {}({agg}) FROM {from}", self.function.sql_name());
        if !self.predicates.is_empty() {
            let conds = self
                .predicates
                .iter()
                .map(|p| format!("{} = {}", db.short_column_name(p.column), p.value))
                .collect::<Vec<_>>()
                .join(" AND ");
            sql.push_str(" WHERE ");
            sql.push_str(&conds);
        }
        sql
    }

    /// A natural-language description of the query, as shown to users when
    /// hovering over a claim (Figure 3(b) of the paper).
    pub fn describe(&self, db: &Database) -> String {
        let subject = match self.column {
            AggColumn::Star => "rows".to_string(),
            AggColumn::Column(c) => format!("values of {}", db.short_column_name(c)),
        };
        let head = match self.function {
            AggFunction::Count => format!("the number of {subject}"),
            AggFunction::CountDistinct => format!("the number of distinct {subject}"),
            AggFunction::Sum => format!("the sum of {subject}"),
            AggFunction::Avg => format!("the average of {subject}"),
            AggFunction::Min => format!("the minimum of {subject}"),
            AggFunction::Max => format!("the maximum of {subject}"),
            AggFunction::Percentage => format!("the percentage of {subject}"),
            AggFunction::ConditionalProbability => {
                format!("the conditional probability of {subject}")
            }
            AggFunction::Median => format!("the median of {subject}"),
        };
        if self.predicates.is_empty() {
            return head;
        }
        if self.function == AggFunction::ConditionalProbability {
            let cond = &self.predicates[0];
            let event = self.predicates[1..]
                .iter()
                .map(|p| format!("{} is {}", db.short_column_name(p.column), p.value))
                .collect::<Vec<_>>()
                .join(" and ");
            if event.is_empty() {
                return format!(
                    "{head} given that {} is {}",
                    db.short_column_name(cond.column),
                    cond.value
                );
            }
            return format!(
                "the probability that {event}, given that {} is {}",
                db.short_column_name(cond.column),
                cond.value
            );
        }
        let conds = self
            .predicates
            .iter()
            .map(|p| format!("{} is {}", db.short_column_name(p.column), p.value))
            .collect::<Vec<_>>()
            .join(" and ");
        format!("{head} where {conds}")
    }
}

impl fmt::Display for SimpleAggregateQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({:?}) σ{}",
            self.function,
            self.column,
            self.predicates.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn db() -> Database {
        let t = Table::from_columns(
            "nflsuspensions",
            vec![
                ("games", vec!["indef".into(), "indef".into(), "10".into()]),
                (
                    "category",
                    vec!["gambling".into(), "substance abuse".into(), "peds".into()],
                ),
                (
                    "year",
                    vec![Value::Int(1983), Value::Int(2014), Value::Int(2014)],
                ),
            ],
        )
        .unwrap();
        let mut db = Database::new("nfl");
        db.add_table(t);
        db
    }

    fn col(db: &Database, name: &str) -> ColumnRef {
        db.resolve("nflsuspensions", name).unwrap()
    }

    #[test]
    fn sql_rendering_matches_paper_style() {
        let d = db();
        let q = SimpleAggregateQuery::count_star(vec![
            Predicate::new(col(&d, "games"), "indef"),
            Predicate::new(col(&d, "category"), "gambling"),
        ]);
        assert_eq!(
            q.to_sql(&d),
            "SELECT Count(*) FROM nflsuspensions WHERE games = 'indef' AND category = 'gambling'"
        );
    }

    #[test]
    fn describe_is_readable() {
        let d = db();
        let q = SimpleAggregateQuery::count_star(vec![Predicate::new(col(&d, "games"), "indef")]);
        assert_eq!(q.describe(&d), "the number of rows where games is 'indef'");

        let q =
            SimpleAggregateQuery::new(AggFunction::Avg, AggColumn::Column(col(&d, "year")), vec![]);
        assert_eq!(q.describe(&d), "the average of values of year");
    }

    #[test]
    fn conditional_probability_describe() {
        let d = db();
        let q = SimpleAggregateQuery::new(
            AggFunction::ConditionalProbability,
            AggColumn::Star,
            vec![
                Predicate::new(col(&d, "games"), "indef"),
                Predicate::new(col(&d, "category"), "gambling"),
            ],
        );
        let desc = q.describe(&d);
        assert!(desc.contains("given that games is 'indef'"), "{desc}");
    }

    #[test]
    fn validation_rules() {
        let d = db();
        // Sum over a string column is invalid.
        let q = SimpleAggregateQuery::new(
            AggFunction::Sum,
            AggColumn::Column(col(&d, "games")),
            vec![],
        );
        assert!(q.validate(&d).is_err());
        // Sum over * is invalid.
        let q = SimpleAggregateQuery::new(AggFunction::Sum, AggColumn::Star, vec![]);
        assert!(q.validate(&d).is_err());
        // Duplicate predicate columns are invalid.
        let q = SimpleAggregateQuery::count_star(vec![
            Predicate::new(col(&d, "games"), "indef"),
            Predicate::new(col(&d, "games"), "10"),
        ]);
        assert!(q.validate(&d).is_err());
        // Conditional probability without predicates is invalid.
        let q =
            SimpleAggregateQuery::new(AggFunction::ConditionalProbability, AggColumn::Star, vec![]);
        assert!(q.validate(&d).is_err());
        // A well-formed query validates.
        let q = SimpleAggregateQuery::count_star(vec![Predicate::new(col(&d, "games"), "indef")]);
        q.validate(&d).unwrap();
    }

    #[test]
    fn function_metadata() {
        assert_eq!(AggFunction::ALL.len(), 9);
        for (i, f) in AggFunction::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
            assert!(!f.keywords().is_empty());
        }
        assert!(AggFunction::Sum.requires_numeric_column());
        assert!(!AggFunction::Count.requires_numeric_column());
        assert!(AggFunction::Percentage.is_ratio());
        assert!(!AggFunction::Avg.is_ratio());
    }

    #[test]
    fn tables_referenced_defaults_to_first_table() {
        let q = SimpleAggregateQuery::count_star(vec![]);
        assert_eq!(q.tables_referenced(), vec![0]);
    }

    #[test]
    fn semantic_equality_ignores_predicate_order_and_case() {
        let d = db();
        let a = SimpleAggregateQuery::count_star(vec![
            Predicate::new(col(&d, "games"), "indef"),
            Predicate::new(col(&d, "category"), "Gambling"),
        ]);
        let b = SimpleAggregateQuery::count_star(vec![
            Predicate::new(col(&d, "category"), "gambling"),
            Predicate::new(col(&d, "games"), "INDEF"),
        ]);
        assert!(a.semantically_equal(&b));
        // Different function breaks equality.
        let c = SimpleAggregateQuery::new(
            AggFunction::CountDistinct,
            AggColumn::Star,
            a.predicates.clone(),
        );
        assert!(!a.semantically_equal(&c));
        // Different predicate count breaks equality.
        let e = SimpleAggregateQuery::count_star(vec![Predicate::new(col(&d, "games"), "indef")]);
        assert!(!a.semantically_equal(&e));
    }

    #[test]
    fn conditional_probability_condition_is_order_sensitive() {
        let d = db();
        let mk = |first: Predicate, second: Predicate| {
            SimpleAggregateQuery::new(
                AggFunction::ConditionalProbability,
                AggColumn::Star,
                vec![first, second],
            )
        };
        let a = mk(
            Predicate::new(col(&d, "games"), "indef"),
            Predicate::new(col(&d, "category"), "gambling"),
        );
        let b = mk(
            Predicate::new(col(&d, "category"), "gambling"),
            Predicate::new(col(&d, "games"), "indef"),
        );
        assert!(!a.semantically_equal(&b), "different condition predicate");
        assert!(a.semantically_equal(&a.clone()));
    }
}
