//! Error type shared across the relational engine.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RelationalError>;

/// Errors raised by the relational engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// A table name was not found in the database.
    UnknownTable(String),
    /// A column name was not found in the referenced table.
    UnknownColumn { table: String, column: String },
    /// A CSV document could not be parsed.
    Csv { line: usize, message: String },
    /// The requested tables cannot be connected via PK-FK join paths.
    NoJoinPath { from: String, to: String },
    /// A query referenced a column with an incompatible type
    /// (e.g. `Sum` over a string column).
    TypeMismatch {
        column: String,
        expected: &'static str,
    },
    /// A query was structurally invalid (e.g. duplicate predicate columns).
    InvalidQuery(String),
    /// The schema is invalid (e.g. cyclic foreign keys or bad references).
    InvalidSchema(String),
    /// Execution failed at runtime: a scan pass panicked under it, or a
    /// poisoned single-flight exhausted its retry budget. The work unit
    /// that hit it fails cleanly instead of hanging its waiters.
    Execution(String),
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTable(name) => write!(f, "unknown table: {name}"),
            Self::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            Self::Csv { line, message } => write!(f, "CSV parse error at line {line}: {message}"),
            Self::NoJoinPath { from, to } => {
                write!(f, "no PK-FK join path between {from} and {to}")
            }
            Self::TypeMismatch { column, expected } => {
                write!(
                    f,
                    "column {column} is not usable here (expected {expected})"
                )
            }
            Self::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            Self::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            Self::Execution(msg) => write!(f, "execution failed: {msg}"),
        }
    }
}

impl std::error::Error for RelationalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelationalError::UnknownTable("nflsuspensions".into());
        assert!(e.to_string().contains("nflsuspensions"));

        let e = RelationalError::UnknownColumn {
            table: "t".into(),
            column: "games".into(),
        };
        assert!(e.to_string().contains("t.games"));

        let e = RelationalError::Csv {
            line: 7,
            message: "unterminated quote".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&RelationalError::InvalidQuery("x".into()));
    }
}
