//! Columnar storage with dictionary-encoded strings.
//!
//! Equality predicates and cube grouping operate on `u32` dictionary codes
//! rather than string comparisons; this is what makes evaluating tens of
//! thousands of candidate queries per document (§6 of the paper) affordable.

use crate::fxhash::FxHashMap;
use crate::value::{DataType, Value};

/// Dictionary code reserved for NULL cells in string columns.
pub const NULL_CODE: u32 = u32::MAX;

/// Interns the distinct strings of one column.
///
/// Lookups are case-insensitive (the paper's articles routinely spell values
/// with different capitalization than the data, e.g. "Gambling" vs
/// `gambling`), but the original spelling of the first occurrence is kept for
/// display.
///
/// Both [`StringDictionary::intern`] and [`StringDictionary::code_of`] are
/// allocation-free: instead of lowercasing into a temporary `String` per
/// call, the index maps a case-folding hash to candidate codes and confirms
/// with `eq_ignore_ascii_case` against the stored spelling.
#[derive(Debug, Clone, Default)]
pub struct StringDictionary {
    strings: Vec<String>,
    /// Case-folding hash → codes with that hash (almost always exactly one).
    buckets: FxHashMap<u64, Vec<u32>>,
}

/// FNV-1a over ASCII-lowercased bytes: equal-up-to-case strings collide.
fn case_folded_hash(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        hash ^= b.to_ascii_lowercase() as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

impl StringDictionary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Intern `s`, returning its code. Repeated calls with equal strings
    /// (up to ASCII case) return the same code.
    pub fn intern(&mut self, s: &str) -> u32 {
        let hash = case_folded_hash(s);
        let bucket = self.buckets.entry(hash).or_default();
        for &code in bucket.iter() {
            if self.strings[code as usize].eq_ignore_ascii_case(s) {
                return code;
            }
        }
        let code = self.strings.len() as u32;
        self.strings.push(s.to_string());
        bucket.push(code);
        code
    }

    /// Code of `s` if it has been interned.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.buckets
            .get(&case_folded_hash(s))?
            .iter()
            .copied()
            .find(|&code| self.strings[code as usize].eq_ignore_ascii_case(s))
    }

    /// The display string behind a code.
    pub fn resolve(&self, code: u32) -> Option<&str> {
        self.strings.get(code as usize).map(String::as_str)
    }

    /// Iterate over `(code, string)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }
}

/// The physical data of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Nullable 64-bit integers.
    Int(Vec<Option<i64>>),
    /// Nullable 64-bit floats.
    Float(Vec<Option<f64>>),
    /// Dictionary-encoded strings; `NULL_CODE` marks NULL cells.
    Str {
        codes: Vec<u32>,
        dict: StringDictionary,
    },
}

impl ColumnData {
    /// An empty column of the given type.
    pub fn new(data_type: DataType) -> Self {
        match data_type {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Str => ColumnData::Str {
                codes: Vec::new(),
                dict: StringDictionary::new(),
            },
        }
    }

    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str { .. } => DataType::Str,
        }
    }

    /// Whether this column can serve as an aggregation column
    /// (`Sum`, `Avg`, …). Only numeric columns qualify.
    pub fn is_numeric(&self) -> bool {
        !matches!(self, ColumnData::Str { .. })
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a value, coercing numerics as needed. Returns `false` when the
    /// value cannot be stored in this column's type (the caller then decides
    /// whether to widen the column or store NULL).
    pub fn push(&mut self, value: &Value) -> bool {
        match (self, value) {
            (ColumnData::Int(v), Value::Int(i)) => v.push(Some(*i)),
            (ColumnData::Int(v), Value::Null) => v.push(None),
            (ColumnData::Float(v), Value::Float(f)) => v.push(Some(*f)),
            (ColumnData::Float(v), Value::Int(i)) => v.push(Some(*i as f64)),
            (ColumnData::Float(v), Value::Null) => v.push(None),
            (ColumnData::Str { codes, dict }, Value::Str(s)) => codes.push(dict.intern(s)),
            (ColumnData::Str { codes, dict }, Value::Int(i)) => {
                codes.push(dict.intern(&i.to_string()))
            }
            (ColumnData::Str { codes, dict }, Value::Float(f)) => {
                codes.push(dict.intern(&f.to_string()))
            }
            (ColumnData::Str { codes, .. }, Value::Null) => codes.push(NULL_CODE),
            _ => return false,
        }
        true
    }

    /// The cell at `row` as an owned [`Value`].
    pub fn get(&self, row: usize) -> Value {
        match self {
            ColumnData::Int(v) => v[row].map(Value::Int).unwrap_or(Value::Null),
            ColumnData::Float(v) => v[row].map(Value::Float).unwrap_or(Value::Null),
            ColumnData::Str { codes, dict } => {
                let code = codes[row];
                if code == NULL_CODE {
                    Value::Null
                } else {
                    Value::Str(dict.resolve(code).unwrap_or_default().to_string())
                }
            }
        }
    }

    /// Numeric view of the cell at `row` (integers widen), `None` for NULL
    /// or string cells.
    #[inline]
    pub fn get_f64(&self, row: usize) -> Option<f64> {
        match self {
            ColumnData::Int(v) => v[row].map(|i| i as f64),
            ColumnData::Float(v) => v[row],
            ColumnData::Str { .. } => None,
        }
    }

    /// Whether the cell at `row` is NULL.
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        match self {
            ColumnData::Int(v) => v[row].is_none(),
            ColumnData::Float(v) => v[row].is_none(),
            ColumnData::Str { codes, .. } => codes[row] == NULL_CODE,
        }
    }

    /// The string dictionary, for string columns.
    pub fn dictionary(&self) -> Option<&StringDictionary> {
        match self {
            ColumnData::Str { dict, .. } => Some(dict),
            _ => None,
        }
    }

    /// Dictionary codes, for string columns.
    pub fn codes(&self) -> Option<&[u32]> {
        match self {
            ColumnData::Str { codes, .. } => Some(codes),
            _ => None,
        }
    }

    /// A *grouping code* for the cell at `row`, usable for equality grouping
    /// regardless of column type.
    ///
    /// For string columns this is the dictionary code. For numeric columns
    /// the bit pattern of the value is hashed to a `u64` key space; the
    /// engine only ever groups on columns with few distinct values, so
    /// collisions across the u64 space are not a practical concern.
    #[inline]
    pub fn group_code(&self, row: usize) -> Option<u64> {
        match self {
            ColumnData::Str { codes, .. } => {
                let c = codes[row];
                (c != NULL_CODE).then_some(c as u64)
            }
            ColumnData::Int(v) => v[row].map(|i| i as u64),
            ColumnData::Float(v) => v[row].map(|f| f.to_bits()),
        }
    }

    /// The grouping code a [`Value`] would have in this column, if present.
    pub fn group_code_of(&self, value: &Value) -> Option<u64> {
        match (self, value) {
            (ColumnData::Str { dict, .. }, Value::Str(s)) => dict.code_of(s).map(|c| c as u64),
            (ColumnData::Int(_), Value::Int(i)) => Some(*i as u64),
            (ColumnData::Int(_), Value::Float(f)) if f.fract() == 0.0 => Some(*f as i64 as u64),
            (ColumnData::Float(_), v) => v.as_f64().map(f64::to_bits),
            _ => None,
        }
    }

    /// Number of distinct non-null values. For numeric columns this scans;
    /// for string columns it is the dictionary size (an upper bound that is
    /// exact when every interned string occurs).
    pub fn distinct_count(&self) -> usize {
        match self {
            ColumnData::Str { dict, .. } => dict.len(),
            ColumnData::Int(v) => {
                let mut seen: std::collections::HashSet<i64> = std::collections::HashSet::new();
                v.iter().flatten().for_each(|i| {
                    seen.insert(*i);
                });
                seen.len()
            }
            ColumnData::Float(v) => {
                let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
                v.iter().flatten().for_each(|f| {
                    seen.insert(f.to_bits());
                });
                seen.len()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_interning_is_case_insensitive() {
        let mut d = StringDictionary::new();
        let a = d.intern("Gambling");
        let b = d.intern("gambling");
        let c = d.intern("GAMBLING");
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(d.len(), 1);
        assert_eq!(d.resolve(a), Some("Gambling"));
        assert_eq!(d.code_of("gamBLing"), Some(a));
        assert_eq!(d.code_of("other"), None);
    }

    #[test]
    fn dictionary_assigns_sequential_codes() {
        let mut d = StringDictionary::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("a"), 0);
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b")]);
    }

    #[test]
    fn int_column_round_trip() {
        let mut c = ColumnData::new(DataType::Int);
        assert!(c.push(&Value::Int(5)));
        assert!(c.push(&Value::Null));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Value::Int(5));
        assert_eq!(c.get(1), Value::Null);
        assert!(c.is_null(1));
        assert!(!c.is_null(0));
        assert_eq!(c.get_f64(0), Some(5.0));
    }

    #[test]
    fn float_column_accepts_ints() {
        let mut c = ColumnData::new(DataType::Float);
        assert!(c.push(&Value::Int(2)));
        assert!(c.push(&Value::Float(0.5)));
        assert_eq!(c.get_f64(0), Some(2.0));
        assert_eq!(c.get_f64(1), Some(0.5));
    }

    #[test]
    fn int_column_rejects_strings() {
        let mut c = ColumnData::new(DataType::Int);
        assert!(!c.push(&Value::Str("x".into())));
    }

    #[test]
    fn str_column_coerces_numbers_to_strings() {
        let mut c = ColumnData::new(DataType::Str);
        assert!(c.push(&Value::Str("indef".into())));
        assert!(c.push(&Value::Int(16)));
        assert!(c.push(&Value::Null));
        assert_eq!(c.get(0), Value::Str("indef".into()));
        assert_eq!(c.get(1), Value::Str("16".into()));
        assert_eq!(c.get(2), Value::Null);
    }

    #[test]
    fn group_codes_align_between_rows_and_values() {
        let mut c = ColumnData::new(DataType::Str);
        c.push(&Value::Str("a".into()));
        c.push(&Value::Str("b".into()));
        c.push(&Value::Str("a".into()));
        assert_eq!(c.group_code(0), c.group_code(2));
        assert_ne!(c.group_code(0), c.group_code(1));
        assert_eq!(
            c.group_code_of(&Value::Str("A".into())),
            c.group_code(0),
            "value lookup must be case-insensitive like interning"
        );
        assert_eq!(c.group_code_of(&Value::Str("zzz".into())), None);
    }

    #[test]
    fn group_codes_for_numeric_columns() {
        let mut c = ColumnData::new(DataType::Int);
        c.push(&Value::Int(16));
        c.push(&Value::Null);
        assert_eq!(c.group_code(0), Some(16));
        assert_eq!(c.group_code(1), None);
        assert_eq!(c.group_code_of(&Value::Int(16)), Some(16));
        // A float value that is integral matches the int column.
        assert_eq!(c.group_code_of(&Value::Float(16.0)), Some(16));
        assert_eq!(c.group_code_of(&Value::Float(16.5)), None);
    }

    #[test]
    fn distinct_counts() {
        let mut c = ColumnData::new(DataType::Int);
        for v in [1, 2, 2, 3, 3, 3] {
            c.push(&Value::Int(v));
        }
        c.push(&Value::Null);
        assert_eq!(c.distinct_count(), 3);

        let mut s = ColumnData::new(DataType::Str);
        s.push(&Value::Str("a".into()));
        s.push(&Value::Str("A".into()));
        s.push(&Value::Str("b".into()));
        assert_eq!(s.distinct_count(), 2);
    }
}
