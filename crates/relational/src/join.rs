//! PK-FK join paths and join materialization.
//!
//! §6 of the paper: the `FROM` clause of a candidate query *"contains all
//! tables containing any of the columns referred to in aggregates or
//! predicates. We connect those tables via equi-joins along
//! foreign-key-primary-key join paths"*, and the schema is assumed acyclic.

use crate::database::{ColumnRef, Database};
use crate::error::{RelationalError, Result};
use crate::schema::ForeignKey;
use std::collections::HashMap;

/// The minimal set of tables and FK edges connecting a set of required
/// tables (the paper's `JoinPathTables` / `JoinPathPreds`).
#[derive(Debug, Clone)]
pub struct JoinPath {
    /// Tables in join order: each table after the first is connected to an
    /// earlier one by the edge at the same position in `edges`.
    pub tables: Vec<usize>,
    /// `edges[i]` connects `tables[i + 1]` to some earlier table.
    pub edges: Vec<ForeignKey>,
}

impl JoinPath {
    /// Compute the join path covering all `required` tables. With a single
    /// required table this is trivially that table; otherwise a BFS over the
    /// undirected FK graph finds the connecting subtree.
    pub fn connect(db: &Database, required: &[usize]) -> Result<JoinPath> {
        assert!(!required.is_empty(), "at least one table required");
        let start = required[0];
        if required.len() == 1 {
            return Ok(JoinPath {
                tables: vec![start],
                edges: Vec::new(),
            });
        }
        // Adjacency list over undirected FK edges.
        let mut adj: HashMap<usize, Vec<(usize, ForeignKey)>> = HashMap::new();
        for fk in db.foreign_keys() {
            adj.entry(fk.from_table)
                .or_default()
                .push((fk.to_table, *fk));
            adj.entry(fk.to_table)
                .or_default()
                .push((fk.from_table, *fk));
        }
        // BFS from `start`, remembering the parent edge of each table.
        let mut parent_edge: HashMap<usize, ForeignKey> = HashMap::new();
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([start]);
        let mut seen = std::collections::HashSet::from([start]);
        while let Some(t) = queue.pop_front() {
            for (next, fk) in adj.get(&t).into_iter().flatten() {
                if seen.insert(*next) {
                    parent.insert(*next, t);
                    parent_edge.insert(*next, *fk);
                    queue.push_back(*next);
                }
            }
        }
        // Collect the union of paths from each required table back to start.
        let mut in_path = std::collections::HashSet::from([start]);
        for &t in &required[1..] {
            if !seen.contains(&t) {
                return Err(RelationalError::NoJoinPath {
                    from: db.table(start).name().to_string(),
                    to: db.table(t).name().to_string(),
                });
            }
            let mut cur = t;
            while cur != start && in_path.insert(cur) {
                cur = parent[&cur];
            }
        }
        // Emit tables in BFS order so every edge connects to an earlier table.
        let mut tables = vec![start];
        let mut edges = Vec::new();
        let mut frontier = std::collections::VecDeque::from([start]);
        while let Some(t) = frontier.pop_front() {
            for (next, fk) in adj.get(&t).into_iter().flatten() {
                if in_path.contains(next) && !tables.contains(next) && parent.get(next) == Some(&t)
                {
                    tables.push(*next);
                    edges.push(*fk);
                    frontier.push_back(*next);
                }
            }
        }
        Ok(JoinPath { tables, edges })
    }
}

/// A materialized equi-join: for every output row, one row index per joined
/// table. A single-table "join" stays virtual (no allocation per row).
#[derive(Debug, Clone)]
pub struct JoinedRelation {
    /// Joined tables, in [`JoinPath`] order.
    pub tables: Vec<usize>,
    rows: Rows,
}

#[derive(Debug, Clone)]
enum Rows {
    /// Identity over a single table with the given row count.
    Identity(usize),
    /// Materialized tuples: `tuples[row][table_position]`.
    Materialized(Vec<Vec<u32>>),
}

impl JoinedRelation {
    /// Materialize the join described by `path`.
    pub fn materialize(db: &Database, path: &JoinPath) -> Result<JoinedRelation> {
        // Relations materialize over *visible* rows only: a table's
        // watermark pins which rows any scan of this relation can see, so
        // snapshots taken before an append never observe the new rows.
        if path.tables.len() == 1 {
            return Ok(JoinedRelation {
                tables: path.tables.clone(),
                rows: Rows::Identity(db.table(path.tables[0]).visible_rows()),
            });
        }
        // Start with the first table's rows, then hash-join one edge at a
        // time. `position[t]` is the tuple slot of table `t`.
        let mut position: HashMap<usize, usize> = HashMap::from([(path.tables[0], 0)]);
        let mut tuples: Vec<Vec<u32>> = (0..db.table(path.tables[0]).visible_rows())
            .map(|r| vec![r as u32])
            .collect();
        for (i, fk) in path.edges.iter().enumerate() {
            let new_table = path.tables[i + 1];
            // Orient the edge: `existing` side is already in the tuples.
            let (exist_t, exist_c, new_c) = if position.contains_key(&fk.from_table) {
                (fk.from_table, fk.from_column, fk.to_column)
            } else {
                (fk.to_table, fk.to_column, fk.from_column)
            };
            let exist_pos = position[&exist_t];
            // Build hash table over the new table's join column.
            let new_col = db.table(new_table).column(new_c);
            let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
            for row in 0..db.table(new_table).visible_rows() {
                if let Some(code) = join_key(db, new_table, new_c, row) {
                    index.entry(code).or_default().push(row as u32);
                }
            }
            let exist_col_table = exist_t;
            let mut next: Vec<Vec<u32>> = Vec::with_capacity(tuples.len());
            for tuple in &tuples {
                let row = tuple[exist_pos] as usize;
                let key = join_key_col(db, exist_col_table, exist_c, row, new_col);
                if let Some(key) = key {
                    if let Some(matches) = index.get(&key) {
                        for &m in matches {
                            let mut t = tuple.clone();
                            t.push(m);
                            next.push(t);
                        }
                    }
                }
            }
            position.insert(new_table, i + 1);
            tuples = next;
        }
        Ok(JoinedRelation {
            tables: path.tables.clone(),
            rows: Rows::Materialized(tuples),
        })
    }

    /// Build the join for all tables referenced by a query.
    pub fn for_tables(db: &Database, required: &[usize]) -> Result<JoinedRelation> {
        let path = JoinPath::connect(db, required)?;
        Self::materialize(db, &path)
    }

    /// Number of output rows.
    pub fn len(&self) -> usize {
        match &self.rows {
            Rows::Identity(n) => *n,
            Rows::Materialized(t) => t.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when this relation is a single table scanned in storage order
    /// (output row `i` ≡ base row `i`). Such scans can run directly on the
    /// table's compressed blocks; materialized joins permute rows and fall
    /// back to the plain path.
    #[inline]
    pub fn is_identity(&self) -> bool {
        matches!(self.rows, Rows::Identity(_))
    }

    /// The base-table row index backing output row `row` for `table`.
    /// Panics if `table` is not part of the join.
    #[inline]
    pub fn base_row(&self, row: usize, table: usize) -> usize {
        match &self.rows {
            Rows::Identity(_) => {
                debug_assert_eq!(table, self.tables[0]);
                row
            }
            Rows::Materialized(tuples) => {
                let pos = self
                    .tables
                    .iter()
                    .position(|t| *t == table)
                    .expect("table in join");
                tuples[row][pos] as usize
            }
        }
    }

    /// Resolver closure from output rows to base rows for one column; hoists
    /// the table-position lookup out of per-row loops.
    pub fn resolver(&self, col: ColumnRef) -> RowResolver<'_> {
        match &self.rows {
            Rows::Identity(_) => RowResolver {
                tuples: None,
                position: 0,
            },
            Rows::Materialized(tuples) => RowResolver {
                tuples: Some(tuples),
                position: self
                    .tables
                    .iter()
                    .position(|t| *t == col.table)
                    .expect("column's table in join"),
            },
        }
    }
}

/// Maps output row indices to base-table row indices for one column.
#[derive(Clone, Copy)]
pub struct RowResolver<'a> {
    tuples: Option<&'a Vec<Vec<u32>>>,
    position: usize,
}

impl RowResolver<'_> {
    #[inline]
    pub fn base_row(&self, row: usize) -> usize {
        match self.tuples {
            None => row,
            Some(t) => t[row][self.position] as usize,
        }
    }
}

/// Join key for a cell, hashing across column types via group codes.
/// Strings join by *string content* (not dictionary code, which is
/// per-column), so FK joins over string keys work.
fn join_key(db: &Database, table: usize, column: usize, row: usize) -> Option<u64> {
    let col = db.table(table).column(column);
    match col {
        crate::column::ColumnData::Str { codes, dict } => {
            let code = codes[row];
            if code == crate::column::NULL_CODE {
                None
            } else {
                Some(string_hash(dict.resolve(code)?))
            }
        }
        _ => col.group_code(row),
    }
}

/// Join key for the probe side, made comparable with `join_key` of the build
/// side (`new_col` determines how strings were hashed).
fn join_key_col(
    db: &Database,
    table: usize,
    column: usize,
    row: usize,
    _other: &crate::column::ColumnData,
) -> Option<u64> {
    join_key(db, table, column, row)
}

fn string_hash(s: &str) -> u64 {
    // FNV-1a over the lowercased bytes; stable across dictionaries.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        hash ^= b.to_ascii_lowercase() as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use crate::value::Value;

    fn star_db() -> Database {
        // players ← suspensions (FK), players ← awards (FK): a star schema.
        let players = Table::from_columns(
            "players",
            vec![
                (
                    "player_id",
                    vec![Value::Int(1), Value::Int(2), Value::Int(3)],
                ),
                (
                    "team",
                    vec!["ravens".into(), "browns".into(), "cowboys".into()],
                ),
            ],
        )
        .unwrap();
        let suspensions = Table::from_columns(
            "suspensions",
            vec![
                (
                    "player_id",
                    vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Int(9)],
                ),
                (
                    "category",
                    vec![
                        "gambling".into(),
                        "peds".into(),
                        "peds".into(),
                        "orphan".into(),
                    ],
                ),
            ],
        )
        .unwrap();
        let awards = Table::from_columns(
            "awards",
            vec![
                ("player_id", vec![Value::Int(1), Value::Int(3)]),
                ("award", vec!["mvp".into(), "roty".into()]),
            ],
        )
        .unwrap();
        let mut db = Database::new("nfl");
        let p = db.add_table(players);
        let s = db.add_table(suspensions);
        let a = db.add_table(awards);
        db.add_foreign_key(ForeignKey {
            from_table: s,
            from_column: 0,
            to_table: p,
            to_column: 0,
        })
        .unwrap();
        db.add_foreign_key(ForeignKey {
            from_table: a,
            from_column: 0,
            to_table: p,
            to_column: 0,
        })
        .unwrap();
        db
    }

    #[test]
    fn single_table_join_is_identity() {
        let db = star_db();
        let j = JoinedRelation::for_tables(&db, &[0]).unwrap();
        assert_eq!(j.len(), 3);
        assert_eq!(j.base_row(2, 0), 2);
    }

    #[test]
    fn two_table_join_matches_fk() {
        let db = star_db();
        let j = JoinedRelation::for_tables(&db, &[0, 1]).unwrap();
        // suspensions has 4 rows but player_id=9 has no match: 3 join rows.
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn three_table_join_through_hub() {
        let db = star_db();
        // suspensions ⋈ players ⋈ awards: suspension rows for players with
        // awards. player 1 has 2 suspensions and 1 award → 2 rows;
        // player 2 has none; player 3 has no suspension.
        let j = JoinedRelation::for_tables(&db, &[1, 2]).unwrap();
        assert_eq!(j.tables.len(), 3, "hub table players must be included");
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn join_key_is_case_insensitive_for_strings() {
        assert_eq!(string_hash("Gambling"), string_hash("gambling"));
        assert_ne!(string_hash("a"), string_hash("b"));
    }

    #[test]
    fn disconnected_tables_error() {
        let mut db = star_db();
        db.add_table(Table::from_columns("island", vec![("x", vec![Value::Int(1)])]).unwrap());
        let err = JoinedRelation::for_tables(&db, &[0, 3]).unwrap_err();
        assert!(matches!(err, RelationalError::NoJoinPath { .. }));
    }

    #[test]
    fn resolver_maps_rows() {
        let db = star_db();
        let j = JoinedRelation::for_tables(&db, &[0, 1]).unwrap();
        let cat = db.resolve("suspensions", "category").unwrap();
        let r = j.resolver(cat);
        let mut cats: Vec<Value> = (0..j.len())
            .map(|row| db.column(cat).get(r.base_row(row)))
            .collect();
        cats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(
            cats,
            vec![
                Value::Str("gambling".into()),
                Value::Str("peds".into()),
                Value::Str("peds".into())
            ]
        );
    }
}
