//! Aggregate accumulators.
//!
//! [`Accumulator`] covers the value-based aggregates (`Count`,
//! `CountDistinct`, `Sum`, `Avg`, `Min`, `Max`). The two ratio aggregates
//! (`Percentage`, `ConditionalProbability`) are *derived* from counts of row
//! subsets — the executor and the cube operator compute them from `Count`
//! results per footnote 1 of the paper.

use crate::fxhash::FxHashSet;
use crate::query::AggFunction;

/// Streaming accumulator for one aggregate over one row group.
#[derive(Debug, Clone)]
pub enum Accumulator {
    Count(u64),
    /// Distinct group codes of the aggregated column.
    CountDistinct(FxHashSet<u64>),
    Sum {
        sum: f64,
        n: u64,
    },
    Avg {
        sum: f64,
        n: u64,
    },
    Min(Option<f64>),
    Max(Option<f64>),
    /// Collects values; the median is computed on finish. Memory is bounded
    /// by group size — acceptable for the engine's in-memory scale.
    Median(Vec<f64>),
}

impl Accumulator {
    /// A fresh accumulator for the given function.
    ///
    /// Ratio aggregates have no accumulator of their own; callers must
    /// accumulate counts instead (see module docs). Requesting one here is a
    /// programming error.
    pub fn new(function: AggFunction) -> Accumulator {
        match function {
            AggFunction::Count => Accumulator::Count(0),
            AggFunction::CountDistinct => Accumulator::CountDistinct(FxHashSet::default()),
            AggFunction::Sum => Accumulator::Sum { sum: 0.0, n: 0 },
            AggFunction::Avg => Accumulator::Avg { sum: 0.0, n: 0 },
            AggFunction::Min => Accumulator::Min(None),
            AggFunction::Max => Accumulator::Max(None),
            AggFunction::Median => Accumulator::Median(Vec::new()),
            AggFunction::Percentage | AggFunction::ConditionalProbability => {
                panic!("ratio aggregates are derived from counts, not accumulated directly")
            }
        }
    }

    /// Fold one row into the accumulator.
    ///
    /// * `numeric` — the aggregation column's numeric value (`None` for NULL
    ///   cells, string cells, or `*`).
    /// * `group_code` — an equality-comparable code for the aggregation
    ///   column's value (`None` for NULL or `*`); only `CountDistinct` uses it.
    /// * `non_null` — whether the aggregation column's cell is non-NULL
    ///   (`true` for `*`). `Count` counts rows with `non_null`.
    #[inline]
    pub fn update(&mut self, numeric: Option<f64>, group_code: Option<u64>, non_null: bool) {
        match self {
            Accumulator::Count(c) => {
                if non_null {
                    *c += 1;
                }
            }
            Accumulator::CountDistinct(set) => {
                if let Some(code) = group_code {
                    set.insert(code);
                }
            }
            Accumulator::Sum { sum, n } | Accumulator::Avg { sum, n } => {
                if let Some(v) = numeric {
                    *sum += v;
                    *n += 1;
                }
            }
            Accumulator::Min(m) => {
                if let Some(v) = numeric {
                    *m = Some(m.map_or(v, |cur| cur.min(v)));
                }
            }
            Accumulator::Max(m) => {
                if let Some(v) = numeric {
                    *m = Some(m.map_or(v, |cur| cur.max(v)));
                }
            }
            Accumulator::Median(values) => {
                if let Some(v) = numeric {
                    values.push(v);
                }
            }
        }
    }

    /// Merge another accumulator of the same kind (used by cube rollups).
    /// Panics on kind mismatch.
    pub fn merge(&mut self, other: &Accumulator) {
        match (self, other) {
            (Accumulator::Count(a), Accumulator::Count(b)) => *a += b,
            (Accumulator::CountDistinct(a), Accumulator::CountDistinct(b)) => {
                a.extend(b.iter().copied())
            }
            (Accumulator::Sum { sum: s1, n: n1 }, Accumulator::Sum { sum: s2, n: n2 })
            | (Accumulator::Avg { sum: s1, n: n1 }, Accumulator::Avg { sum: s2, n: n2 }) => {
                *s1 += s2;
                *n1 += n2;
            }
            (Accumulator::Min(a), Accumulator::Min(b)) => {
                if let Some(v) = b {
                    *a = Some(a.map_or(*v, |cur| cur.min(*v)));
                }
            }
            (Accumulator::Max(a), Accumulator::Max(b)) => {
                if let Some(v) = b {
                    *a = Some(a.map_or(*v, |cur| cur.max(*v)));
                }
            }
            (Accumulator::Median(a), Accumulator::Median(b)) => {
                a.extend_from_slice(b);
            }
            _ => panic!("cannot merge accumulators of different kinds"),
        }
    }

    /// Final aggregate value. SQL semantics: `Count` of an empty group is 0;
    /// `Sum`/`Avg`/`Min`/`Max` of an empty group are NULL (`None`).
    pub fn finish(&self) -> Option<f64> {
        match self {
            Accumulator::Count(c) => Some(*c as f64),
            Accumulator::CountDistinct(set) => Some(set.len() as f64),
            Accumulator::Sum { sum, n } => (*n > 0).then_some(*sum),
            Accumulator::Avg { sum, n } => (*n > 0).then_some(*sum / *n as f64),
            Accumulator::Min(m) => *m,
            Accumulator::Max(m) => *m,
            Accumulator::Median(values) => {
                if values.is_empty() {
                    return None;
                }
                let mut sorted = values.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let n = sorted.len();
                Some(if n % 2 == 1 {
                    sorted[n / 2]
                } else {
                    (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
                })
            }
        }
    }
}

/// Derive a ratio aggregate from counts (footnote 1 of the paper).
///
/// * `Percentage`: `100 · full / base`, where `full` is the count under all
///   predicates and `base` the count with no predicates.
/// * `ConditionalProbability`: `100 · full / condition`, where `condition`
///   is the count under the first predicate only.
pub fn ratio_from_counts(numerator: f64, denominator: f64) -> Option<f64> {
    (denominator > 0.0).then_some(100.0 * numerator / denominator)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_counts_non_null_rows() {
        let mut a = Accumulator::new(AggFunction::Count);
        a.update(None, None, true);
        a.update(None, None, true);
        a.update(None, None, false); // NULL aggregation cell
        assert_eq!(a.finish(), Some(2.0));
    }

    #[test]
    fn count_distinct_uses_group_codes() {
        let mut a = Accumulator::new(AggFunction::CountDistinct);
        for code in [1u64, 2, 2, 3, 3, 3] {
            a.update(None, Some(code), true);
        }
        a.update(None, None, false);
        assert_eq!(a.finish(), Some(3.0));
    }

    #[test]
    fn sum_and_avg_skip_nulls() {
        let mut s = Accumulator::new(AggFunction::Sum);
        let mut m = Accumulator::new(AggFunction::Avg);
        for v in [1.0, 2.0, 3.0] {
            s.update(Some(v), None, true);
            m.update(Some(v), None, true);
        }
        s.update(None, None, false);
        m.update(None, None, false);
        assert_eq!(s.finish(), Some(6.0));
        assert_eq!(m.finish(), Some(2.0));
    }

    #[test]
    fn empty_groups_follow_sql_semantics() {
        assert_eq!(Accumulator::new(AggFunction::Count).finish(), Some(0.0));
        assert_eq!(Accumulator::new(AggFunction::Sum).finish(), None);
        assert_eq!(Accumulator::new(AggFunction::Avg).finish(), None);
        assert_eq!(Accumulator::new(AggFunction::Min).finish(), None);
        assert_eq!(Accumulator::new(AggFunction::Max).finish(), None);
    }

    #[test]
    fn min_max_track_extremes() {
        let mut mn = Accumulator::new(AggFunction::Min);
        let mut mx = Accumulator::new(AggFunction::Max);
        for v in [5.0, -1.0, 3.0] {
            mn.update(Some(v), None, true);
            mx.update(Some(v), None, true);
        }
        assert_eq!(mn.finish(), Some(-1.0));
        assert_eq!(mx.finish(), Some(5.0));
    }

    #[test]
    fn merge_is_consistent_with_streaming() {
        let values = [1.0, 4.0, 2.0, 8.0, 5.0];
        for f in [
            AggFunction::Count,
            AggFunction::CountDistinct,
            AggFunction::Sum,
            AggFunction::Avg,
            AggFunction::Min,
            AggFunction::Max,
        ] {
            let mut whole = Accumulator::new(f);
            let mut left = Accumulator::new(f);
            let mut right = Accumulator::new(f);
            for (i, v) in values.iter().enumerate() {
                whole.update(Some(*v), Some(v.to_bits()), true);
                let half = if i < 2 { &mut left } else { &mut right };
                half.update(Some(*v), Some(v.to_bits()), true);
            }
            left.merge(&right);
            assert_eq!(left.finish(), whole.finish(), "function {f}");
        }
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn merging_mismatched_kinds_panics() {
        let mut a = Accumulator::new(AggFunction::Count);
        a.merge(&Accumulator::new(AggFunction::Sum));
    }

    #[test]
    #[should_panic(expected = "ratio aggregates")]
    fn ratio_aggregates_have_no_accumulator() {
        let _ = Accumulator::new(AggFunction::Percentage);
    }

    #[test]
    fn ratio_from_counts_handles_zero_denominator() {
        assert_eq!(ratio_from_counts(1.0, 4.0), Some(25.0));
        assert_eq!(ratio_from_counts(1.0, 0.0), None);
    }
}
