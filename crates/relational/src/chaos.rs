//! Deterministic fault injection for the execution substrate.
//!
//! Robustness claims — "no ticket ever hangs", "a drained shutdown leaves
//! no in-flight cache entry" — are worthless if they are only ever tested
//! on the happy path. This module compiles in (under
//! `cfg(any(test, feature = "chaos"))`) a set of **named hook points** in
//! the scan kernel, the wave orchestrator, and the single-flight cache,
//! all driven by one seeded [`FaultPlan`]:
//!
//! * [`scan_block_cross`] — called at the top of every
//!   [`DenseGrid::scan_block`](crate::cube) invocation, i.e. once per
//!   scanned block *inside* fused row passes. Injects panics (a worker
//!   dying mid-pass) and delays (a slow scan stretching the window in
//!   which other waves race the cache).
//! * [`inject_flight_poison`] — consulted by
//!   [`EvalCache::flight`](crate::cache::EvalCache::flight) before
//!   registering a fresh computation. A firing hook hands the caller an
//!   already-poisoned flight instead, exercising the bounded
//!   poison-retry path without ever leaking an `inflight` entry.
//! * [`inject_wave_guard_drop`] — consulted by
//!   [`run_requests`](crate::schedule::run_requests) for each flight
//!   guard a wave probe won. A firing hook drops the guard (poisoning
//!   the flight for every joined waiter) while the wave still computes
//!   the aggregate for itself — the "publisher crashed between claim and
//!   publish" shape.
//!
//! Faults are **deterministic**: each hook keeps a global invocation
//! counter and fires when `(count + seed) % every == 0`, so a given plan
//! over a given workload injects the same faults in the same order (up to
//! thread interleaving of the counter increments, which only permutes
//! *which* concurrent caller absorbs each fault). A plan with every
//! `*_every_*` knob at 0 injects nothing, and the fast path is one relaxed
//! atomic load — the zero-fault proptest pins that enabling the layer
//! changes no report bit.
//!
//! Install a plan with [`install`]; the returned [`ChaosGuard`] deactivates
//! it on drop and serializes chaos tests against each other (the hooks are
//! process-global).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

fn lock<'m, T>(m: &'m Mutex<T>) -> MutexGuard<'m, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One seeded fault-injection plan. Every `*_every_*` knob means "fire at
/// each Nth hook crossing" with 0 disabling that fault entirely; `seed`
/// phase-shifts the firing pattern so different seeds exercise different
/// interleavings of the same workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Phase shift applied to every hook counter.
    pub seed: u64,
    /// Panic at every Nth scan block (0 = never). The panic payload
    /// contains `"chaos"`, so suites can tell injected panics from real
    /// ones.
    pub panic_every_scan_blocks: u64,
    /// Sleep [`FaultPlan::delay_micros`] at every Nth scan block (0 =
    /// never) — a slow scan inside a fused pass.
    pub delay_every_scan_blocks: u64,
    /// Duration of an injected scan delay.
    pub delay_micros: u64,
    /// Hand out an already-poisoned flight at every Nth fresh
    /// [`EvalCache::flight`](crate::cache::EvalCache::flight) registration
    /// (0 = never).
    pub poison_every_flights: u64,
    /// Drop every Nth wave-probe flight guard before execution (0 =
    /// never).
    pub poison_every_wave_guards: u64,
}

impl FaultPlan {
    /// A plan that injects nothing — the zero-fault control arm.
    pub fn zero(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Does this plan inject any fault at all?
    pub fn is_zero(&self) -> bool {
        self.panic_every_scan_blocks == 0
            && self.delay_every_scan_blocks == 0
            && self.poison_every_flights == 0
            && self.poison_every_wave_guards == 0
    }
}

/// Per-hook crossing and injection counters for one installed plan.
#[derive(Debug, Default)]
struct Hooks {
    scan_blocks: AtomicU64,
    flights: AtomicU64,
    wave_guards: AtomicU64,
    injected_panics: AtomicU64,
    injected_delays: AtomicU64,
    injected_flight_poisons: AtomicU64,
    injected_guard_drops: AtomicU64,
}

#[derive(Debug)]
struct ChaosState {
    plan: FaultPlan,
    hooks: Hooks,
}

/// The currently-installed plan, if any. `ENABLED` mirrors `is_some()` so
/// the disabled fast path is a single atomic load, never a lock.
static ACTIVE: Mutex<Option<Arc<ChaosState>>> = Mutex::new(None);
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Serializes chaos tests: the hooks are process-global, so two plans must
/// never be active at once. Held by the [`ChaosGuard`] for its lifetime.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

/// Activate `plan` process-wide until the returned guard drops. Blocks
/// while another guard is alive (chaos tests serialize on this).
pub fn install(plan: FaultPlan) -> ChaosGuard {
    let serial = lock(&INSTALL_LOCK);
    let state = Arc::new(ChaosState {
        plan,
        hooks: Hooks::default(),
    });
    *lock(&ACTIVE) = Some(state.clone());
    ENABLED.store(true, Ordering::Release);
    ChaosGuard {
        state,
        _serial: serial,
    }
}

/// Keeps a [`FaultPlan`] active and exposes what it actually injected;
/// dropping it deactivates the plan and releases the chaos serialization
/// lock.
pub struct ChaosGuard {
    state: Arc<ChaosState>,
    _serial: MutexGuard<'static, ()>,
}

impl ChaosGuard {
    /// Scan-block panics injected so far.
    pub fn injected_panics(&self) -> u64 {
        self.state.hooks.injected_panics.load(Ordering::Relaxed)
    }

    /// Scan-block delays injected so far.
    pub fn injected_delays(&self) -> u64 {
        self.state.hooks.injected_delays.load(Ordering::Relaxed)
    }

    /// Fresh flights handed out pre-poisoned so far.
    pub fn injected_flight_poisons(&self) -> u64 {
        self.state
            .hooks
            .injected_flight_poisons
            .load(Ordering::Relaxed)
    }

    /// Wave-probe guards dropped before execution so far.
    pub fn injected_guard_drops(&self) -> u64 {
        self.state
            .hooks
            .injected_guard_drops
            .load(Ordering::Relaxed)
    }

    /// Total faults of any kind injected so far.
    pub fn injected_total(&self) -> u64 {
        self.injected_panics()
            + self.injected_delays()
            + self.injected_flight_poisons()
            + self.injected_guard_drops()
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Release);
        *lock(&ACTIVE) = None;
    }
}

fn active() -> Option<Arc<ChaosState>> {
    if !ENABLED.load(Ordering::Acquire) {
        return None;
    }
    lock(&ACTIVE).clone()
}

/// Does the `count`-th crossing of a hook with period `every` fire?
fn fires(count: u64, every: u64, seed: u64) -> bool {
    every != 0 && (count + seed).is_multiple_of(every)
}

/// Hook: one scan block is about to be processed (inside a fused pass or a
/// solo scan alike). May sleep, may panic — with a `"chaos"`-tagged
/// payload — per the installed plan.
pub fn scan_block_cross() {
    let Some(state) = active() else { return };
    let n = state.hooks.scan_blocks.fetch_add(1, Ordering::Relaxed) + 1;
    let plan = &state.plan;
    if fires(n, plan.delay_every_scan_blocks, plan.seed) {
        state.hooks.injected_delays.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_micros(plan.delay_micros));
    }
    if fires(n, plan.panic_every_scan_blocks, plan.seed) {
        state.hooks.injected_panics.fetch_add(1, Ordering::Relaxed);
        panic!("chaos: injected scan-block panic at crossing {n}");
    }
}

/// Hook: the cache is about to register a fresh in-flight computation.
/// Returns true if the caller should instead hand out an already-poisoned
/// flight (simulating a computer that died before anyone could join).
pub fn inject_flight_poison() -> bool {
    let Some(state) = active() else { return false };
    let n = state.hooks.flights.fetch_add(1, Ordering::Relaxed) + 1;
    if fires(n, state.plan.poison_every_flights, state.plan.seed) {
        state
            .hooks
            .injected_flight_poisons
            .fetch_add(1, Ordering::Relaxed);
        return true;
    }
    false
}

/// Hook: a wave probe won a flight guard. Returns true if the guard should
/// be dropped (poisoning its flight) before the wave executes — the
/// "crashed between claim and publish" shape.
pub fn inject_wave_guard_drop() -> bool {
    let Some(state) = active() else { return false };
    let n = state.hooks.wave_guards.fetch_add(1, Ordering::Relaxed) + 1;
    if fires(n, state.plan.poison_every_wave_guards, state.plan.seed) {
        state
            .hooks
            .injected_guard_drops
            .fetch_add(1, Ordering::Relaxed);
        return true;
    }
    false
}

/// Is the payload of a caught panic one of ours?
pub fn is_chaos_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    payload
        .downcast_ref::<&'static str>()
        .map(|s| s.contains("chaos"))
        .or_else(|| {
            payload
                .downcast_ref::<String>()
                .map(|s| s.contains("chaos"))
        })
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_injects_nothing() {
        let guard = install(FaultPlan::zero(42));
        assert!(guard.state.plan.is_zero());
        for _ in 0..100 {
            scan_block_cross();
            assert!(!inject_flight_poison());
            assert!(!inject_wave_guard_drop());
        }
        assert_eq!(guard.injected_total(), 0);
    }

    #[test]
    fn periodic_plan_fires_deterministically() {
        let plan = FaultPlan {
            seed: 1,
            poison_every_flights: 3,
            poison_every_wave_guards: 2,
            ..FaultPlan::default()
        };
        let run = || {
            let guard = install(plan);
            let flights: Vec<bool> = (0..12).map(|_| inject_flight_poison()).collect();
            let guards: Vec<bool> = (0..12).map(|_| inject_wave_guard_drop()).collect();
            assert_eq!(guard.injected_flight_poisons(), 4);
            assert_eq!(guard.injected_guard_drops(), 6);
            (flights, guards)
        };
        assert_eq!(run(), run(), "same plan, same firing pattern");
    }

    #[test]
    fn scan_panic_is_tagged_and_counted() {
        let guard = install(FaultPlan {
            panic_every_scan_blocks: 1,
            ..FaultPlan::default()
        });
        let payload = std::panic::catch_unwind(scan_block_cross).unwrap_err();
        assert!(is_chaos_panic(payload.as_ref()));
        assert_eq!(guard.injected_panics(), 1);
    }

    #[test]
    fn uninstalled_hooks_are_inert() {
        // Serialize against other chaos tests, then drop the plan.
        drop(install(FaultPlan::zero(0)));
        scan_block_cross();
        assert!(!inject_flight_poison());
        assert!(!inject_wave_guard_drop());
    }
}
