//! A dependency-free FxHash implementation (the rustc hasher).
//!
//! The cube executor's fallback grid and the result maps are keyed by small
//! integer keys (`u64` packed group codes, `u32` dictionary codes). The
//! standard library's SipHash is DoS-resistant but costs ~10× more per
//! lookup than Fx on such keys, and none of these maps are exposed to
//! attacker-controlled keys — the keys come from our own dictionary codes.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Firefox/rustc hash: a single multiply-xor round per word. Excellent
/// for small integer keys; not for untrusted input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_ne!(hash(0), hash(1));
        assert_ne!(hash(1), hash(1 << 8));
        assert_eq!(hash(42), hash(42));
    }

    #[test]
    fn map_round_trip() {
        let mut map: FxHashMap<u64, &str> = FxHashMap::default();
        map.insert(7, "seven");
        map.insert(u64::MAX, "max");
        assert_eq!(map.get(&7), Some(&"seven"));
        assert_eq!(map.get(&u64::MAX), Some(&"max"));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn byte_stream_matches_word_writes_for_alignment() {
        // write() must consume full words plus a zero-padded tail without
        // panicking for any length.
        for len in 0..20 {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h = FxHasher::default();
            h.write(&bytes);
            let _ = h.finish();
        }
    }
}
