//! A database: a set of tables connected by PK-FK constraints.

use crate::column::ColumnData;
use crate::error::{RelationalError, Result};
use crate::schema::ForeignKey;
use crate::table::Table;
use serde::{Deserialize, Serialize};

/// A fully qualified reference to a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnRef {
    pub table: usize,
    pub column: usize,
}

impl ColumnRef {
    pub fn new(table: usize, column: usize) -> Self {
        Self { table, column }
    }
}

/// A named collection of tables plus the foreign keys connecting them.
///
/// The paper assumes an **acyclic** schema (§6.3); [`Database::validate`]
/// enforces this so join-path discovery is unambiguous.
#[derive(Debug, Clone, Default)]
pub struct Database {
    pub name: String,
    tables: Vec<Table>,
    foreign_keys: Vec<ForeignKey>,
    /// Structural epoch: bumped by every mutation that can change what an
    /// already-computed result *means* (adding tables or foreign keys,
    /// dropping encodings). Cache keys embed it, so a structural mutation
    /// hard-invalidates every resident grid. Row appends do **not** bump it
    /// — they move the watermark instead and are patched incrementally.
    version: u64,
}

impl Database {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tables: Vec::new(),
            foreign_keys: Vec::new(),
            version: 0,
        }
    }

    /// Structural epoch of this database (see the field docs).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total visible rows across tables — the database-wide watermark that
    /// stamps cached grids. Two snapshots with equal `(version, watermark)`
    /// over the same lineage see identical data.
    pub fn watermark(&self) -> u64 {
        self.tables.iter().map(|t| t.visible_rows() as u64).sum()
    }

    /// Add a table, returning its index. The table is sealed on the way in
    /// ([`Table::seal`]) so fused scans over this database run on the
    /// compressed block encodings.
    pub fn add_table(&mut self, table: Table) -> usize {
        let mut table = table;
        table.seal();
        self.tables.push(table);
        self.version += 1;
        self.tables.len() - 1
    }

    /// Drop every table's block encodings, forcing all scans onto the
    /// plain columnar path. For encoded≡plain A/B tests and benches only —
    /// typically on a `clone()` of the sealed database. Bumps the
    /// structural version: results computed before the unseal must not be
    /// served from cache afterwards.
    pub fn unseal_tables(&mut self) {
        for table in &mut self.tables {
            table.unseal();
        }
        self.version += 1;
    }

    /// Append rows to the named table ([`Table::append_rows`]): the table
    /// stays sealed, its watermark advances, and the structural version is
    /// untouched — cached grids stamped at the old watermark stay valid for
    /// their row range and are patched forward by scanning only the delta.
    pub fn append_rows(&mut self, table: &str, rows: &[Vec<crate::value::Value>]) -> Result<usize> {
        let idx = self
            .table_index(table)
            .ok_or_else(|| RelationalError::UnknownTable(table.to_string()))?;
        self.tables[idx].append_rows(rows)
    }

    /// Mutable access to a table, for tests that pin watermarks mid-block.
    pub fn table_mut(&mut self, idx: usize) -> &mut Table {
        &mut self.tables[idx]
    }

    /// Declare a foreign key from `(from_table, from_column)` to the primary
    /// key `(to_table, to_column)`.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> Result<()> {
        let check = |t: usize, c: usize| -> Result<()> {
            let table = self
                .tables
                .get(t)
                .ok_or_else(|| RelationalError::InvalidSchema(format!("no table #{t}")))?;
            if c >= table.column_count() {
                return Err(RelationalError::InvalidSchema(format!(
                    "table {} has no column #{c}",
                    table.name()
                )));
            }
            Ok(())
        };
        check(fk.from_table, fk.from_column)?;
        check(fk.to_table, fk.to_column)?;
        self.foreign_keys.push(fk);
        self.version += 1;
        Ok(())
    }

    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    pub fn table(&self, idx: usize) -> &Table {
        &self.tables[idx]
    }

    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Index of the table with the given name (case-insensitive).
    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.tables
            .iter()
            .position(|t| t.name().eq_ignore_ascii_case(name))
    }

    /// Resolve `table.column` names to a [`ColumnRef`].
    pub fn resolve(&self, table: &str, column: &str) -> Result<ColumnRef> {
        let t = self
            .table_index(table)
            .ok_or_else(|| RelationalError::UnknownTable(table.to_string()))?;
        let c = self.tables[t].schema.column_index(column).ok_or_else(|| {
            RelationalError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            }
        })?;
        Ok(ColumnRef::new(t, c))
    }

    /// The physical column behind a [`ColumnRef`].
    pub fn column(&self, col: ColumnRef) -> &ColumnData {
        self.tables[col.table].column(col.column)
    }

    /// `table.column` display name of a reference.
    pub fn column_name(&self, col: ColumnRef) -> String {
        let t = &self.tables[col.table];
        format!("{}.{}", t.name(), t.schema.columns[col.column].name)
    }

    /// Short (unqualified) column name.
    pub fn short_column_name(&self, col: ColumnRef) -> &str {
        &self.tables[col.table].schema.columns[col.column].name
    }

    /// All numeric columns of all tables — the candidate aggregation columns
    /// of §4.2.
    pub fn numeric_columns(&self) -> Vec<ColumnRef> {
        let mut out = Vec::new();
        for (ti, t) in self.tables.iter().enumerate() {
            for ci in t.numeric_columns() {
                out.push(ColumnRef::new(ti, ci));
            }
        }
        out
    }

    /// All string (categorical) columns of all tables — the candidate
    /// predicate columns.
    pub fn string_columns(&self) -> Vec<ColumnRef> {
        let mut out = Vec::new();
        for (ti, t) in self.tables.iter().enumerate() {
            for ci in 0..t.column_count() {
                if !t.column(ci).is_numeric() {
                    out.push(ColumnRef::new(ti, ci));
                }
            }
        }
        out
    }

    /// All columns of all tables.
    pub fn all_columns(&self) -> Vec<ColumnRef> {
        let mut out = Vec::new();
        for (ti, t) in self.tables.iter().enumerate() {
            for ci in 0..t.column_count() {
                out.push(ColumnRef::new(ti, ci));
            }
        }
        out
    }

    /// Total row count across tables (used by the cost model).
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::row_count).sum()
    }

    /// Check schema invariants: the FK graph must be acyclic when viewed as
    /// an undirected graph (tree/forest), which the join-path logic assumes.
    pub fn validate(&self) -> Result<()> {
        // Union-find over tables; an FK whose endpoints are already connected
        // introduces a cycle.
        let mut parent: Vec<usize> = (0..self.tables.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for fk in &self.foreign_keys {
            let a = find(&mut parent, fk.from_table);
            let b = find(&mut parent, fk.to_table);
            if a == b {
                return Err(RelationalError::InvalidSchema(
                    "foreign keys form a cycle; the engine requires an acyclic schema".into(),
                ));
            }
            parent[a] = b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn two_table_db() -> Database {
        let players = Table::from_columns(
            "players",
            vec![
                ("player_id", vec![Value::Int(1), Value::Int(2)]),
                ("team", vec!["ravens".into(), "browns".into()]),
            ],
        )
        .unwrap();
        let suspensions = Table::from_columns(
            "suspensions",
            vec![
                (
                    "player_id",
                    vec![Value::Int(1), Value::Int(1), Value::Int(2)],
                ),
                (
                    "category",
                    vec!["gambling".into(), "peds".into(), "peds".into()],
                ),
            ],
        )
        .unwrap();
        let mut db = Database::new("nfl");
        let p = db.add_table(players);
        let s = db.add_table(suspensions);
        db.add_foreign_key(ForeignKey {
            from_table: s,
            from_column: 0,
            to_table: p,
            to_column: 0,
        })
        .unwrap();
        db
    }

    #[test]
    fn resolve_names() {
        let db = two_table_db();
        let c = db.resolve("suspensions", "category").unwrap();
        assert_eq!(db.column_name(c), "suspensions.category");
        assert!(db.resolve("nope", "category").is_err());
        assert!(db.resolve("players", "nope").is_err());
    }

    #[test]
    fn column_classification() {
        let db = two_table_db();
        let numeric = db.numeric_columns();
        let strings = db.string_columns();
        assert_eq!(numeric.len(), 2); // both player_id columns
        assert_eq!(strings.len(), 2); // team, category
        assert_eq!(db.all_columns().len(), 4);
    }

    #[test]
    fn validate_accepts_tree_schemas() {
        let db = two_table_db();
        db.validate().unwrap();
    }

    #[test]
    fn validate_rejects_cycles() {
        let mut db = two_table_db();
        // A second FK between the same pair of tables closes a cycle.
        db.add_foreign_key(ForeignKey {
            from_table: 1,
            from_column: 0,
            to_table: 0,
            to_column: 0,
        })
        .unwrap();
        assert!(db.validate().is_err());
    }

    #[test]
    fn foreign_key_bounds_checked() {
        let mut db = two_table_db();
        let err = db.add_foreign_key(ForeignKey {
            from_table: 9,
            from_column: 0,
            to_table: 0,
            to_column: 0,
        });
        assert!(err.is_err());
    }

    #[test]
    fn total_rows_sums_tables() {
        let db = two_table_db();
        assert_eq!(db.total_rows(), 5);
    }

    #[test]
    fn structural_mutations_bump_version_appends_do_not() {
        let mut db = two_table_db();
        let v0 = db.version();
        db.unseal_tables();
        assert_eq!(db.version(), v0 + 1, "unseal is a structural mutation");
        let w0 = db.watermark();
        db.append_rows("suspensions", &[vec![Value::Int(2), "gambling".into()]])
            .unwrap();
        assert_eq!(db.version(), v0 + 1, "appends do not bump the version");
        assert_eq!(db.watermark(), w0 + 1, "appends move the watermark");
        assert!(db.append_rows("nope", &[]).is_err());
    }

    #[test]
    fn watermark_sums_visible_rows() {
        let mut db = two_table_db();
        assert_eq!(db.watermark(), 5);
        db.table_mut(1).set_watermark(1);
        assert_eq!(db.watermark(), 3);
    }
}
