//! Logical schema: tables, columns, and PK-FK constraints.

use crate::value::DataType;
use serde::{Deserialize, Serialize};

/// Metadata of one column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Column name as it appears in the data set header.
    pub name: String,
    pub data_type: DataType,
    /// Optional human-readable description, from a data dictionary
    /// (see [`crate::datadict`]). Used to enrich fragment keywords.
    pub description: Option<String>,
}

impl ColumnMeta {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
            description: None,
        }
    }

    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }
}

/// Schema of one table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnMeta>,
    /// Index of the primary-key column, if declared.
    pub primary_key: Option<usize>,
}

impl TableSchema {
    pub fn new(name: impl Into<String>, columns: Vec<ColumnMeta>) -> Self {
        Self {
            name: name.into(),
            columns,
            primary_key: None,
        }
    }

    pub fn with_primary_key(mut self, column: usize) -> Self {
        self.primary_key = Some(column);
        self
    }

    /// Index of the column with the given name (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// A foreign-key edge: `tables[from_table].columns[from_column]` references
/// the primary key `tables[to_table].columns[to_column]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    pub from_table: usize,
    pub from_column: usize,
    pub to_table: usize,
    pub to_column: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_index_is_case_insensitive() {
        let schema = TableSchema::new(
            "nflsuspensions",
            vec![
                ColumnMeta::new("Name", DataType::Str),
                ColumnMeta::new("Games", DataType::Str),
                ColumnMeta::new("Category", DataType::Str),
            ],
        );
        assert_eq!(schema.column_index("games"), Some(1));
        assert_eq!(schema.column_index("GAMES"), Some(1));
        assert_eq!(schema.column_index("nope"), None);
    }

    #[test]
    fn descriptions_attach_to_columns() {
        let meta = ColumnMeta::new("edu", DataType::Str)
            .with_description("highest education level of the respondent");
        assert!(meta.description.unwrap().contains("education"));
    }
}
