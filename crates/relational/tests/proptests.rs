//! Property-based tests of the relational engine's core invariants.

use agg_relational::{
    execute_query, AggColumn, AggFunction, ColumnMeta, CubeOptions, CubeQuery, DataType, Database,
    DimSel, EvalCache, GridMode, MergePlanner, Predicate, SimpleAggregateQuery, StringDictionary,
    Table, TableSchema, Value,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// String dictionary
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn dictionary_intern_resolve_round_trip(words in prop::collection::vec("[a-zA-Z]{1,10}", 1..40)) {
        let mut dict = StringDictionary::new();
        let codes: Vec<u32> = words.iter().map(|w| dict.intern(w)).collect();
        for (w, c) in words.iter().zip(&codes) {
            // Lookup by any casing returns the same code.
            prop_assert_eq!(dict.code_of(&w.to_uppercase()), Some(*c));
            // The resolved spelling matches case-insensitively.
            let resolved = dict.resolve(*c).unwrap();
            prop_assert!(resolved.eq_ignore_ascii_case(w));
        }
        // Codes are dense: 0..len.
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), dict.len());
        prop_assert!(unique.iter().all(|c| (*c as usize) < dict.len()));
    }

    #[test]
    fn csv_parser_never_panics(input in "[ -~\\n\"]{0,200}") {
        // Structurally broken input may error, but must never panic.
        let _ = agg_relational::csv::parse_csv(&input);
    }

    #[test]
    fn parse_cell_classifies_integers(v in -1_000_000i64..1_000_000) {
        prop_assert_eq!(Value::parse_cell(&v.to_string()), Value::Int(v));
    }
}

// ---------------------------------------------------------------------------
// Merge planner ≡ naive execution on random batches
// ---------------------------------------------------------------------------

fn random_db(rows: &[(u8, u8, i64)]) -> Database {
    let cats = ["a", "b", "c"];
    let regions = ["x", "y"];
    let table = Table::from_columns(
        "t",
        vec![
            (
                "cat",
                rows.iter()
                    .map(|(c, _, _)| Value::Str(cats[*c as usize].into()))
                    .collect(),
            ),
            (
                "region",
                rows.iter()
                    .map(|(_, r, _)| Value::Str(regions[*r as usize].into()))
                    .collect(),
            ),
            ("num", rows.iter().map(|(_, _, n)| Value::Int(*n)).collect()),
        ],
    )
    .unwrap();
    let mut db = Database::new("p");
    db.add_table(table);
    db
}

/// An arbitrary valid simple aggregate query over the fixed schema.
fn arb_query() -> impl Strategy<Value = (u8, bool, Option<u8>, Option<u8>)> {
    // (function selector, use num column, cat literal, region literal)
    (
        0u8..8,
        any::<bool>(),
        prop::option::of(0u8..3),
        prop::option::of(0u8..2),
    )
}

fn materialize_query(
    db: &Database,
    (f, use_num, cat_lit, region_lit): (u8, bool, Option<u8>, Option<u8>),
) -> Option<SimpleAggregateQuery> {
    let cats = ["a", "b", "c"];
    let regions = ["x", "y"];
    let cat = db.resolve("t", "cat").unwrap();
    let region = db.resolve("t", "region").unwrap();
    let num = db.resolve("t", "num").unwrap();
    let function = AggFunction::ALL[f as usize];
    let column = match function {
        AggFunction::Count | AggFunction::Percentage | AggFunction::ConditionalProbability => {
            if use_num {
                AggColumn::Column(num)
            } else {
                AggColumn::Star
            }
        }
        AggFunction::CountDistinct => AggColumn::Column(if use_num { num } else { cat }),
        _ => AggColumn::Column(num),
    };
    let mut predicates = Vec::new();
    if let Some(l) = cat_lit {
        predicates.push(Predicate::new(cat, cats[l as usize]));
    }
    if let Some(l) = region_lit {
        predicates.push(Predicate::new(region, regions[l as usize]));
    }
    if function == AggFunction::ConditionalProbability && predicates.is_empty() {
        return None;
    }
    Some(SimpleAggregateQuery::new(function, column, predicates))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merge_plan_matches_naive_for_random_batches(
        rows in prop::collection::vec((0u8..3, 0u8..2, -50i64..50), 1..40),
        specs in prop::collection::vec(arb_query(), 1..12),
    ) {
        let db = std::sync::Arc::new(random_db(&rows));
        let queries: Vec<SimpleAggregateQuery> = specs
            .into_iter()
            .filter_map(|s| materialize_query(&db, s))
            .collect();
        prop_assume!(!queries.is_empty());

        let plan = MergePlanner::plan(&db, &queries).unwrap();
        let (merged, _) = plan.execute(&db).unwrap();
        let cache = EvalCache::new();
        let (cached, _) = plan.execute_cached(&db, &cache).unwrap();
        let (cached2, stats2) = plan.execute_cached(&db, &cache).unwrap();
        prop_assert_eq!(stats2.cubes_executed, 0, "second run fully cached");

        for (i, q) in queries.iter().enumerate() {
            let naive = execute_query(&db, q).unwrap();
            prop_assert_eq!(merged[i], naive, "merged vs naive: {}", q.to_sql(&db));
            prop_assert_eq!(cached[i], naive, "cached vs naive: {}", q.to_sql(&db));
            prop_assert_eq!(cached2[i], naive, "warm cache vs naive: {}", q.to_sql(&db));
        }
    }

    #[test]
    fn cube_grid_modes_and_naive_scans_agree(
        rows in prop::collection::vec(
            // (category selector, region selector, nullable numeric):
            // cat 4 and region 3 encode NULL cells.
            (0u8..5, 0u8..4, prop::option::of(-40i64..40)),
            1..50,
        ),
        threads in 2usize..5,
    ) {
        // "ghost" never occurs in the data (empty-group lookups); "gamma"
        // and "delta" occur but are *not* relevant (OTHER-bucket coverage).
        let cat_names = [Some("alpha"), Some("beta"), Some("gamma"), Some("delta"), None];
        let region_names = [Some("north"), Some("south"), Some("east"), None];
        let mut table = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnMeta::new("cat", DataType::Str),
                ColumnMeta::new("region", DataType::Str),
                ColumnMeta::new("num", DataType::Int),
            ],
        ));
        for (c, r, n) in &rows {
            table
                .push_row(&[
                    cat_names[*c as usize].map(Value::from).unwrap_or(Value::Null),
                    region_names[*r as usize].map(Value::from).unwrap_or(Value::Null),
                    n.map(Value::Int).unwrap_or(Value::Null),
                ])
                .unwrap();
        }
        let mut db = Database::new("p");
        db.add_table(table);
        let cat = db.resolve("t", "cat").unwrap();
        let region = db.resolve("t", "region").unwrap();
        let num = db.resolve("t", "num").unwrap();

        let cat_relevant = ["alpha", "beta", "ghost"];
        let region_relevant = ["north"];
        let cube = CubeQuery {
            dims: vec![cat, region],
            relevant: vec![
                cat_relevant.iter().map(|s| Value::from(*s)).collect(),
                region_relevant.iter().map(|s| Value::from(*s)).collect(),
            ],
            aggregates: vec![
                (AggFunction::Count, AggColumn::Star),
                (AggFunction::Count, AggColumn::Column(num)),
                (AggFunction::Sum, AggColumn::Column(num)),
                (AggFunction::Avg, AggColumn::Column(num)),
                (AggFunction::Min, AggColumn::Column(num)),
                (AggFunction::Max, AggColumn::Column(num)),
                (AggFunction::CountDistinct, AggColumn::Column(num)),
                (AggFunction::CountDistinct, AggColumn::Column(cat)),
            ],
        };

        let dense = cube.execute(&db).unwrap();
        prop_assert_eq!(dense.stats.grid_mode, GridMode::Dense);
        let hashed = cube
            .execute_with(&db, &CubeOptions { dense_cell_cap: 0, ..CubeOptions::default() })
            .unwrap();
        prop_assert_eq!(hashed.stats.grid_mode, GridMode::Hashed);
        let parallel = cube
            .execute_with(&db, &CubeOptions {
                threads,
                parallel_row_threshold: 1,
                clamp_to_hardware: false,
                partition_blocks: 1,
                ..CubeOptions::default()
            })
            .unwrap();
        // Worker count = min(requested, rows / threshold, partitions) with
        // the hardware clamp disabled; under 50 rows is a single 2048-row
        // partition, so the scan stays sequential by construction.
        prop_assert_eq!(parallel.stats.scan_threads, 1);
        prop_assert_eq!(parallel.stats.partitions_scanned, 0);

        // Every addressable (selector, aggregate) combination must agree
        // with a naive per-query scan — across all three executors.
        let cat_sels: Vec<(DimSel, Option<&str>)> = (0..cat_relevant.len())
            .map(|i| (DimSel::Literal(i), Some(cat_relevant[i])))
            .chain([(DimSel::Any, None)])
            .collect();
        let region_sels: Vec<(DimSel, Option<&str>)> = (0..region_relevant.len())
            .map(|i| (DimSel::Literal(i), Some(region_relevant[i])))
            .chain([(DimSel::Any, None)])
            .collect();
        for (cat_sel, cat_lit) in &cat_sels {
            for (region_sel, region_lit) in &region_sels {
                let assignment = [*cat_sel, *region_sel];
                let mut preds = Vec::new();
                if let Some(lit) = cat_lit {
                    preds.push(Predicate::new(cat, *lit));
                }
                if let Some(lit) = region_lit {
                    preds.push(Predicate::new(region, *lit));
                }
                for (idx, (f, col)) in cube.aggregates.iter().enumerate() {
                    let naive =
                        execute_query(&db, &SimpleAggregateQuery::new(*f, *col, preds.clone()))
                            .unwrap();
                    let count_like =
                        matches!(f, AggFunction::Count | AggFunction::CountDistinct);
                    for (name, result) in
                        [("dense", &dense), ("hashed", &hashed), ("parallel", &parallel)]
                    {
                        let merged = if count_like {
                            Some(result.get_count(&assignment, idx))
                        } else {
                            result.get(&assignment, idx)
                        };
                        prop_assert_eq!(
                            merged,
                            naive,
                            "[{}] {:?} over {:?} at {:?}",
                            name,
                            f,
                            col,
                            assignment
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn semantic_equality_is_reflexive_and_symmetric(
        rows in prop::collection::vec((0u8..3, 0u8..2, -50i64..50), 1..5),
        a in arb_query(),
        b in arb_query(),
    ) {
        let db = random_db(&rows);
        let qa = materialize_query(&db, a);
        let qb = materialize_query(&db, b);
        if let Some(qa) = &qa {
            prop_assert!(qa.semantically_equal(qa));
        }
        if let (Some(qa), Some(qb)) = (&qa, &qb) {
            prop_assert_eq!(qa.semantically_equal(qb), qb.semantically_equal(qa));
        }
    }
}
