//! Capture a complete binary-protocol session as an annotated hex dump —
//! the tool that produced (and regenerates) the worked example in
//! `docs/protocol.md`:
//!
//! ```text
//! cargo run -p agg-server --example wire_capture
//! ```
//!
//! Every frame is printed in both directions with its decoded meaning,
//! so the dump doubles as a conformance fixture: a client implementor
//! can diff their bytes against it.

use agg_core::{CheckerConfig, StreamConfig, StreamingVerifier};
use agg_relational::{Database, Table};
use agg_server::protocol::{self, FrameReader, Opcode, ReadOutcome};
use agg_server::{ServerConfig, VerifyServer};
use std::io::Write;
use std::net::TcpStream;

fn dump(direction: &str, note: &str, frame_bytes: &[u8]) {
    println!("{direction} {note}");
    for row in frame_bytes.chunks(16) {
        let hex: Vec<String> = row.iter().map(|b| format!("{b:02x}")).collect();
        let ascii: String = row
            .iter()
            .map(|&b| {
                if (0x20..0x7f).contains(&b) {
                    b as char
                } else {
                    '.'
                }
            })
            .collect();
        println!("  {:<47}  |{ascii}|", hex.join(" "));
    }
    println!();
}

fn frame_bytes(opcode: Opcode, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    protocol::write_frame(&mut out, opcode, payload).expect("in-memory write");
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = Table::from_columns(
        "sales",
        vec![("region", vec!["west".into(), "west".into(), "east".into()])],
    )?;
    let mut db = Database::new("demo");
    db.add_table(table);
    let service = StreamingVerifier::new(db, CheckerConfig::default(), StreamConfig::default())?;
    let server = VerifyServer::start(
        "127.0.0.1:0",
        vec![("demo".to_string(), service)],
        ServerConfig::default(),
    )?;

    let mut sock = TcpStream::connect(server.local_addr())?;
    let mut reader = FrameReader::new();
    let mut read_frame = |sock: &mut TcpStream| -> protocol::Frame {
        loop {
            if let ReadOutcome::Frame(f) = reader.read_from(sock).expect("read frame") {
                break f;
            }
        }
    };

    let hello = frame_bytes(Opcode::Hello, &protocol::hello("demo"));
    sock.write_all(&hello)?;
    dump(
        "C→S",
        "Hello (magic AGGV, version 1, namespace \"demo\")",
        &hello,
    );

    let frame = read_frame(&mut sock);
    dump(
        "S→C",
        &format!(
            "HelloOk (session {})",
            protocol::parse_hello_ok(&frame.payload)?
        ),
        &frame_bytes(Opcode::HelloOk, &frame.payload),
    );

    let text = "<p>There were two sales in the west region.</p>";
    let submit = frame_bytes(Opcode::Submit, &protocol::submit(1, 0, text));
    sock.write_all(&submit)?;
    dump("C→S", "Submit (doc 1, no deadline)", &submit);

    loop {
        let frame = read_frame(&mut sock);
        let op = Opcode::from_u8(frame.opcode).expect("known opcode");
        let note = match op {
            Opcode::Accepted => {
                format!("Accepted (doc {})", protocol::parse_doc_id(&frame.payload)?)
            }
            Opcode::Progress => {
                let (doc, wave, last, claims) = protocol::parse_progress(&frame.payload)?;
                format!(
                    "Progress (doc {doc}, wave {wave}, last={last}, {} claims)",
                    claims.len()
                )
            }
            Opcode::ClaimVerdict => {
                let (doc, index, claim) = protocol::parse_claim_verdict(&frame.payload)?;
                format!(
                    "ClaimVerdict (doc {doc}, claim {index}: {:?}, p={:.3})",
                    claim.verdict, claim.correctness_probability
                )
            }
            Opcode::Complete => {
                let (doc, status, stats) = protocol::parse_complete(&frame.payload)?;
                format!(
                    "Complete (doc {doc}, status {status:?}, {} claims, {} candidates)",
                    stats.claims, stats.candidates_evaluated
                )
            }
            other => other.name().to_string(),
        };
        dump("S→C", &note, &frame_bytes(op, &frame.payload));
        if op == Opcode::Complete {
            break;
        }
    }

    let goodbye = frame_bytes(Opcode::Goodbye, &[]);
    sock.write_all(&goodbye)?;
    dump("C→S", "Goodbye", &goodbye);

    server.shutdown();
    Ok(())
}
