//! Reference client for the binary protocol: connects, submits, tracks
//! incremental `Progress` frames, and reassembles `ClaimVerdict` +
//! `Complete` frames into a [`VerificationReport`] that is bit-identical
//! (same `content_fingerprint`) to an in-process run.
//!
//! The client is single-threaded and pull-driven: every public call
//! pumps frames off the socket until its answer arrives, updating the
//! per-document state for everything else it sees on the way. That makes
//! interleavings trivial to reason about in tests — there is exactly one
//! reader.

use crate::protocol::{self, FrameReader, Opcode, ReadOutcome, WireStats};
use agg_core::report::wire::{self, WireError};
use agg_core::{CheckedClaim, VerificationReport};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes the server closing mid-call).
    Io(io::Error),
    /// The server broke the wire contract (or sent an `Error` frame).
    Protocol(String),
    /// The server answered `Rejected` for this document; `code` is one
    /// of [`protocol::errcode`].
    Rejected { code: u8, message: String },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Rejected { code, message } => {
                write!(f, "rejected (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Protocol(e.to_string())
    }
}

/// One document's settled outcome, client-side.
type Settled = Result<VerificationReport, ClientError>;

/// A connected binary-protocol session. See the crate docs for a usage
/// example.
pub struct BinaryClient {
    stream: TcpStream,
    reader: FrameReader,
    session: u64,
    next_doc: u64,
    /// Claims received so far for documents still streaming.
    assemblies: HashMap<u64, Vec<(u32, CheckedClaim)>>,
    /// Documents whose `Complete`/`Rejected` frame has arrived, awaiting
    /// [`await_report`](BinaryClient::await_report).
    completed: HashMap<u64, Settled>,
    /// Documents whose `Accepted` frame has arrived.
    accepted: HashMap<u64, bool>,
    /// `Progress` frames seen per document.
    progress: HashMap<u64, u64>,
    last_stats: Option<WireStats>,
}

impl BinaryClient {
    /// Connect and complete the `Hello`/`HelloOk` handshake for one
    /// namespace.
    pub fn connect(addr: impl ToSocketAddrs, namespace: &str) -> Result<BinaryClient, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        protocol::write_frame(&mut stream, Opcode::Hello, &protocol::hello(namespace))?;
        let mut reader = FrameReader::new();
        let frame = loop {
            match reader.read_from(&mut stream)? {
                ReadOutcome::Frame(frame) => break frame,
                ReadOutcome::Eof => {
                    return Err(ClientError::Protocol(
                        "server closed during handshake".to_string(),
                    ))
                }
                ReadOutcome::Idle => {}
            }
        };
        match Opcode::from_u8(frame.opcode) {
            Some(Opcode::HelloOk) => {
                let session = protocol::parse_hello_ok(&frame.payload)?;
                Ok(BinaryClient {
                    stream,
                    reader,
                    session,
                    next_doc: 0,
                    assemblies: HashMap::new(),
                    completed: HashMap::new(),
                    accepted: HashMap::new(),
                    progress: HashMap::new(),
                    last_stats: None,
                })
            }
            Some(Opcode::Error) => {
                let (code, message) = protocol::parse_error(&frame.payload)?;
                Err(ClientError::Rejected { code, message })
            }
            _ => Err(ClientError::Protocol(format!(
                "expected HelloOk, got opcode 0x{:02x}",
                frame.opcode
            ))),
        }
    }

    /// The session id assigned by `HelloOk` (also this session's intake
    /// lane on the server).
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Submit a document; blocks until the server answers `Accepted`
    /// (returning the document id to await) or `Rejected`.
    pub fn submit(&mut self, text: &str, deadline_ms: Option<u64>) -> Result<u64, ClientError> {
        self.next_doc += 1;
        let doc = self.next_doc;
        protocol::write_frame(
            &mut self.stream,
            Opcode::Submit,
            &protocol::submit(doc, deadline_ms.unwrap_or(0), text),
        )?;
        loop {
            if self.accepted.remove(&doc).is_some() {
                return Ok(doc);
            }
            // Rejection settles the document before acceptance.
            if let Some(settled) = self.completed.remove(&doc) {
                return settled.map(|_| doc);
            }
            self.pump()?;
        }
    }

    /// Ask the server to cancel a document; the outcome still arrives as
    /// that document's `Complete` frame (status `Cancelled` — or
    /// `Complete`, if verification won the race).
    pub fn cancel(&mut self, doc: u64) -> Result<(), ClientError> {
        protocol::write_frame(&mut self.stream, Opcode::Cancel, &protocol::doc_id(doc))?;
        Ok(())
    }

    /// Block until `doc` settles; reassembles its claim frames into the
    /// full report.
    pub fn await_report(&mut self, doc: u64) -> Result<VerificationReport, ClientError> {
        loop {
            if let Some(settled) = self.completed.remove(&doc) {
                return settled;
            }
            self.pump()?;
        }
    }

    /// How many incremental `Progress` frames have arrived for `doc` so
    /// far (frames are pumped during other calls; this does not read).
    pub fn progress_waves(&self, doc: u64) -> u64 {
        self.progress.get(&doc).copied().unwrap_or(0)
    }

    /// Fetch a counter snapshot from the server.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        self.last_stats = None;
        protocol::write_frame(&mut self.stream, Opcode::Stats, &[])?;
        loop {
            if let Some(stats) = self.last_stats.take() {
                return Ok(stats);
            }
            self.pump()?;
        }
    }

    /// Graceful end of session: the server streams results for anything
    /// still outstanding, then closes; blocks until it does.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        protocol::write_frame(&mut self.stream, Opcode::Goodbye, &[])?;
        loop {
            match self.reader.read_from(&mut self.stream)? {
                ReadOutcome::Frame(frame) => self.dispatch(frame)?,
                ReadOutcome::Eof => return Ok(()),
                ReadOutcome::Idle => {}
            }
        }
    }

    /// Read exactly one frame and fold it into the session state.
    fn pump(&mut self) -> Result<(), ClientError> {
        loop {
            match self.reader.read_from(&mut self.stream)? {
                ReadOutcome::Frame(frame) => return self.dispatch(frame),
                ReadOutcome::Eof => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                ReadOutcome::Idle => {}
            }
        }
    }

    fn dispatch(&mut self, frame: protocol::Frame) -> Result<(), ClientError> {
        match Opcode::from_u8(frame.opcode) {
            Some(Opcode::Accepted) => {
                let doc = protocol::parse_doc_id(&frame.payload)?;
                self.accepted.insert(doc, true);
            }
            Some(Opcode::Progress) => {
                let (doc, _wave, _last, _claims) = protocol::parse_progress(&frame.payload)?;
                *self.progress.entry(doc).or_insert(0) += 1;
            }
            Some(Opcode::ClaimVerdict) => {
                let (doc, index, claim) = protocol::parse_claim_verdict(&frame.payload)?;
                self.assemblies.entry(doc).or_default().push((index, claim));
            }
            Some(Opcode::Complete) => {
                let (doc, status, stats) = protocol::parse_complete(&frame.payload)?;
                let mut indexed = self.assemblies.remove(&doc).unwrap_or_default();
                indexed.sort_by_key(|(index, _)| *index);
                let claims = indexed.into_iter().map(|(_, claim)| claim).collect();
                self.completed
                    .insert(doc, Ok(wire::assemble_report(claims, stats, status)));
            }
            Some(Opcode::Rejected) => {
                let (doc, code, message) = protocol::parse_rejected(&frame.payload)?;
                self.assemblies.remove(&doc);
                self.completed
                    .insert(doc, Err(ClientError::Rejected { code, message }));
            }
            Some(Opcode::StatsOk) => {
                self.last_stats = Some(protocol::parse_stats_ok(&frame.payload)?);
            }
            Some(Opcode::Error) => {
                let (code, message) = protocol::parse_error(&frame.payload)?;
                return Err(ClientError::Protocol(format!(
                    "server error (code {code}): {message}"
                )));
            }
            _ => {
                return Err(ClientError::Protocol(format!(
                    "unexpected opcode 0x{:02x}",
                    frame.opcode
                )))
            }
        }
        Ok(())
    }
}
