//! # agg-server
//!
//! Networked front-end over [`agg_core::stream::StreamingVerifier`]: one
//! TCP listener speaking **two protocols on the same port** — an
//! HTTP/1.1 JSON API for submit/poll/cancel/stats, and a length-prefixed
//! binary protocol that pushes per-claim verdict frames to the client
//! *incrementally* as evaluation waves complete. Everything is built on
//! `std::net` — the build environment has no crates.io access, so there
//! is no async runtime, no HTTP library, and no serde: hand-rolled
//! codecs throughout ([`http`], [`json`], [`protocol`]).
//!
//! The wire contract is written down in `docs/protocol.md` (normative,
//! byte-level) and kept honest by CI: `cargo run -p xtask -- docs-gate`
//! fails if the opcode table there drifts from [`protocol::Opcode`].
//! `docs/architecture.md` traces a submission end-to-end;
//! `docs/operations.md` is the `verifyd` runbook.
//!
//! ## Sessions, namespaces, fairness
//!
//! A server hosts one verification service per **namespace** (one
//! logical database each — multi-tenant). A connection is a **session**:
//! it picks its namespace in the handshake (binary `Hello`) or per
//! request (HTTP `"namespace"` field), and every submission it makes
//! rides the session's own **intake lane** (`lane = session id`), so the
//! round-robin lane scheduler in `core::stream` interleaves competing
//! clients fairly instead of first-come-first-served.
//!
//! ## Incremental results
//!
//! Binary submissions attach a [`ProgressObserver`] that forwards each
//! completed evaluation wave as a `Progress` frame; once the ticket
//! settles, the session streams one `ClaimVerdict` frame per claim
//! followed by `Complete`. A client reassembling those frames
//! ([`client::BinaryClient::await_report`]) gets a report **bit-identical**
//! to an in-process run — same
//! [`content_fingerprint`](agg_core::VerificationReport::content_fingerprint)
//! at any worker count — because the frames reuse the exact codec in
//! [`agg_core::report::wire`].
//!
//! ## Example: submit and await over loopback
//!
//! ```
//! use agg_core::{CheckerConfig, StreamConfig, StreamingVerifier};
//! use agg_relational::{Database, Table};
//! use agg_server::client::BinaryClient;
//! use agg_server::{ServerConfig, VerifyServer};
//!
//! let table = Table::from_columns(
//!     "sales",
//!     vec![("region", vec!["west".into(), "west".into(), "east".into()])],
//! )?;
//! let mut db = Database::new("demo");
//! db.add_table(table);
//! let service = StreamingVerifier::new(db, CheckerConfig::default(), StreamConfig::default())?;
//!
//! // Port 0: the OS picks a free port; local_addr() reports it.
//! let server = VerifyServer::start(
//!     "127.0.0.1:0",
//!     vec![("demo".to_string(), service)],
//!     ServerConfig::default(),
//! )?;
//!
//! let mut client = BinaryClient::connect(server.local_addr(), "demo")?;
//! let doc = client.submit("<p>There were two sales in the west region.</p>", None)?;
//! let report = client.await_report(doc)?;
//! assert_eq!(report.claims.len(), 1);
//! client.goodbye()?;
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Example: the handshake, one frame at a time
//!
//! ```
//! use agg_core::{CheckerConfig, StreamConfig, StreamingVerifier};
//! use agg_relational::{Database, Table};
//! use agg_server::protocol::{self, FrameReader, Opcode, ReadOutcome};
//! use agg_server::{ServerConfig, VerifyServer};
//! use std::net::TcpStream;
//!
//! let table = Table::from_columns("sales", vec![("region", vec!["west".into()])])?;
//! let mut db = Database::new("demo");
//! db.add_table(table);
//! let service = StreamingVerifier::new(db, CheckerConfig::default(), StreamConfig::default())?;
//! let server = VerifyServer::start(
//!     "127.0.0.1:0",
//!     vec![("demo".to_string(), service)],
//!     ServerConfig::default(),
//! )?;
//!
//! // Raw TCP: [len u32 LE][opcode u8][payload], exactly as docs/protocol.md says.
//! let mut sock = TcpStream::connect(server.local_addr())?;
//! protocol::write_frame(&mut sock, Opcode::Hello, &protocol::hello("demo"))?;
//! let mut reader = FrameReader::new();
//! let frame = loop {
//!     if let ReadOutcome::Frame(f) = reader.read_from(&mut sock)? {
//!         break f;
//!     }
//! };
//! assert_eq!(frame.opcode, Opcode::HelloOk as u8);
//! let session = protocol::parse_hello_ok(&frame.payload)?;
//! assert!(session > 0);
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod http;
pub mod json;
pub mod protocol;

use agg_core::stream::{StreamingVerifier, SubmitError, SubmitOptions, Ticket};
use agg_core::{ClaimProgress, ProgressObserver, VerificationReport};
use protocol::{errcode, FrameReader, Opcode, ReadOutcome, WireStats};
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Server tunables (`docs/operations.md` documents each).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Close a connection with nothing outstanding after this long
    /// without a frame or request.
    pub idle_timeout: Duration,
    /// Socket read timeout: how often blocked reads wake to check
    /// idle/shutdown conditions. Bounds shutdown latency.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            idle_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// Point-in-time server counters (connection plumbing only; per-document
/// verification counters live in [`agg_core::StreamStats`], one set per
/// namespace).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections ever accepted.
    pub connections: u64,
    /// Connections currently open.
    pub open_connections: u64,
    /// HTTP requests served (any status).
    pub http_requests: u64,
    /// Binary frames decoded from clients.
    pub frames_in: u64,
    /// Binary frames written to clients.
    pub frames_out: u64,
    /// Frames (or frame streams) that failed to decode; each also
    /// closed its connection.
    pub malformed_frames: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    open_connections: AtomicU64,
    http_requests: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    malformed_frames: AtomicU64,
}

/// One HTTP-submitted document: the ticket, and the settled result once
/// a poll has claimed it (polls are idempotent — the first one to find
/// the ticket done caches the report here).
struct DocEntry {
    ticket: Arc<Ticket>,
    done: Option<Result<VerificationReport, String>>,
}

struct ServerShared {
    namespaces: HashMap<String, Arc<StreamingVerifier>>,
    /// Namespace used by HTTP submissions that name none: the first one
    /// passed to [`VerifyServer::start`].
    default_namespace: String,
    registry: Mutex<HashMap<u64, DocEntry>>,
    next_doc: AtomicU64,
    next_conn: AtomicU64,
    counters: Counters,
    shutdown: AtomicBool,
    config: ServerConfig,
}

/// The listener: accept loop plus one thread per connection, every
/// protocol detail delegated to [`protocol`]/[`http`]. Shut down with
/// [`shutdown`](VerifyServer::shutdown) (graceful: drains every
/// namespace's intake, then joins every connection); plain `Drop` does
/// the same.
pub struct VerifyServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl VerifyServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve the
    /// given namespaces. The first namespace is the HTTP default.
    pub fn start(
        addr: impl ToSocketAddrs,
        namespaces: Vec<(String, StreamingVerifier)>,
        config: ServerConfig,
    ) -> io::Result<VerifyServer> {
        let Some(default_namespace) = namespaces.first().map(|(name, _)| name.clone()) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a server needs at least one namespace",
            ));
        };
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ServerShared {
            namespaces: namespaces
                .into_iter()
                .map(|(name, service)| (name, Arc::new(service)))
                .collect(),
            default_namespace,
            registry: Mutex::new(HashMap::new()),
            next_doc: AtomicU64::new(0),
            next_conn: AtomicU64::new(0),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            config,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conns);
        let accept = thread::Builder::new()
            .name("verifyd-accept".into())
            .spawn(move || loop {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        accept_shared
                            .counters
                            .connections
                            .fetch_add(1, Ordering::SeqCst);
                        accept_shared
                            .counters
                            .open_connections
                            .fetch_add(1, Ordering::SeqCst);
                        let conn_id = accept_shared.next_conn.fetch_add(1, Ordering::SeqCst) + 1;
                        let conn_shared = Arc::clone(&accept_shared);
                        let handle = thread::Builder::new()
                            .name(format!("verifyd-conn-{conn_id}"))
                            .spawn(move || {
                                serve_connection(&conn_shared, stream, conn_id);
                                conn_shared
                                    .counters
                                    .open_connections
                                    .fetch_sub(1, Ordering::SeqCst);
                            })
                            .expect("spawn connection thread");
                        lock(&accept_conns).push(handle);
                    }
                    // Non-blocking accept: nothing pending (or a
                    // transient error) — nap and re-check shutdown.
                    Err(_) => thread::sleep(Duration::from_millis(5)),
                }
            })?;
        Ok(VerifyServer {
            shared,
            addr: local,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The verification service behind a namespace (tests and embedders
    /// inspect its [`StreamStats`](agg_core::StreamStats) directly).
    pub fn namespace(&self, name: &str) -> Option<Arc<StreamingVerifier>> {
        self.shared.namespaces.get(name).cloned()
    }

    /// Snapshot of the connection-level counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        ServerStats {
            connections: c.connections.load(Ordering::SeqCst),
            open_connections: c.open_connections.load(Ordering::SeqCst),
            http_requests: c.http_requests.load(Ordering::SeqCst),
            frames_in: c.frames_in.load(Ordering::SeqCst),
            frames_out: c.frames_out.load(Ordering::SeqCst),
            malformed_frames: c.malformed_frames.load(Ordering::SeqCst),
        }
    }

    /// Graceful drain: stop accepting, close every namespace's intake
    /// (queued documents still verify), then join every connection —
    /// sessions finish streaming results for work already admitted.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            handle.join().ok();
        }
        for service in self.shared.namespaces.values() {
            service.close();
        }
        let handles = std::mem::take(&mut *lock(&self.conns));
        for handle in handles {
            handle.join().ok();
        }
    }
}

impl Drop for VerifyServer {
    fn drop(&mut self) {
        self.stop();
    }
}

// --- connection handling ---------------------------------------------

type OutMsg = Option<(Opcode, Vec<u8>)>;

/// Forwards evaluation waves as `Progress` frames. Send failures are
/// ignored: a dead writer means the client is gone, and the watcher
/// thread handles settlement.
struct FrameObserver {
    doc: u64,
    tx: Mutex<mpsc::Sender<OutMsg>>,
}

impl ProgressObserver for FrameObserver {
    fn wave_complete(&self, wave: usize, last: bool, claims: &[ClaimProgress]) {
        let payload = protocol::progress(self.doc, wave as u64, last, claims);
        let _ = lock(&self.tx).send(Some((Opcode::Progress, payload)));
    }
}

/// Sniff the first bytes to pick a protocol, then serve.
fn serve_connection(shared: &Arc<ServerShared>, mut stream: TcpStream, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let started = Instant::now();
    let mut sniffed = Vec::new();
    while sniffed.len() < 4 {
        if shared.shutdown.load(Ordering::SeqCst) || started.elapsed() > shared.config.idle_timeout
        {
            return;
        }
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => sniffed.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
    if looks_like_http(&sniffed) {
        serve_http(shared, stream, conn_id, sniffed);
    } else {
        serve_binary(shared, stream, conn_id, sniffed);
    }
}

fn looks_like_http(head: &[u8]) -> bool {
    const METHODS: [&[u8; 4]; 7] = [
        b"GET ", b"POST", b"PUT ", b"HEAD", b"DELE", b"OPTI", b"PATC",
    ];
    METHODS.iter().any(|m| head.starts_with(*m))
}

// --- HTTP front-end ---------------------------------------------------

fn serve_http(shared: &Arc<ServerShared>, mut stream: TcpStream, conn_id: u64, buffered: Vec<u8>) {
    let mut reader = http::HttpReader::with_buffered(buffered);
    let mut last_activity = Instant::now();
    loop {
        let mut read_ref = &stream;
        match reader.read_from(&mut read_ref) {
            Ok(http::HttpOutcome::Request(req)) => {
                last_activity = Instant::now();
                shared.counters.http_requests.fetch_add(1, Ordering::SeqCst);
                let close = req.wants_close();
                let (status, reason, body) = route(shared, conn_id, &req);
                if http::respond(&mut stream, status, reason, &body, !close).is_err() || close {
                    return;
                }
            }
            Ok(http::HttpOutcome::Eof) => return,
            Ok(http::HttpOutcome::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst)
                    || last_activity.elapsed() > shared.config.idle_timeout
                {
                    return;
                }
            }
            Err(_) => {
                let _ = http::respond(
                    &mut stream,
                    400,
                    "Bad Request",
                    "{\"error\":\"malformed request\"}",
                    false,
                );
                return;
            }
        }
    }
}

fn route(
    shared: &Arc<ServerShared>,
    conn_id: u64,
    req: &http::Request,
) -> (u16, &'static str, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/documents") => submit_document(shared, conn_id, &req.body),
        ("GET", "/v1/stats") => (200, "OK", stats_json(shared)),
        (method, path) => {
            if let Some(rest) = path.strip_prefix("/v1/documents/") {
                if method == "GET" {
                    return poll_document(shared, rest);
                }
                if method == "POST" {
                    if let Some(id_text) = rest.strip_suffix("/cancel") {
                        return cancel_document(shared, id_text);
                    }
                }
            }
            (404, "Not Found", "{\"error\":\"not found\"}".to_string())
        }
    }
}

fn bad_request(message: &str) -> (u16, &'static str, String) {
    (
        400,
        "Bad Request",
        format!("{{\"error\":\"{}\"}}", json::escape(message)),
    )
}

fn submit_document(
    shared: &Arc<ServerShared>,
    conn_id: u64,
    body: &[u8],
) -> (u16, &'static str, String) {
    let Ok(text_body) = std::str::from_utf8(body) else {
        return bad_request("body is not UTF-8");
    };
    let parsed = match json::parse(text_body) {
        Ok(v) => v,
        Err(e) => return bad_request(&e.to_string()),
    };
    let Some(text) = parsed.get("text").and_then(json::Json::as_str) else {
        return bad_request("missing required string field \"text\"");
    };
    let namespace = match parsed.get("namespace") {
        None => shared.default_namespace.as_str(),
        Some(v) => match v.as_str() {
            Some(name) => name,
            None => return bad_request("\"namespace\" must be a string"),
        },
    };
    let Some(service) = shared.namespaces.get(namespace) else {
        return (
            404,
            "Not Found",
            format!(
                "{{\"error\":\"unknown namespace \\\"{}\\\"\"}}",
                json::escape(namespace)
            ),
        );
    };
    let deadline = match parsed.get("deadline_ms") {
        None | Some(json::Json::Null) => None,
        Some(v) => match v.as_u64() {
            Some(ms) => Some(Instant::now() + Duration::from_millis(ms)),
            None => return bad_request("\"deadline_ms\" must be a non-negative integer"),
        },
    };
    let opts = SubmitOptions {
        deadline,
        lane: conn_id,
        observer: None,
    };
    match service.submit_text_with(text, opts) {
        Ok(ticket) => {
            let id = shared.next_doc.fetch_add(1, Ordering::SeqCst) + 1;
            lock(&shared.registry).insert(
                id,
                DocEntry {
                    ticket: Arc::new(ticket),
                    done: None,
                },
            );
            (
                202,
                "Accepted",
                format!(
                    "{{\"id\":{id},\"status\":\"pending\",\"namespace\":\"{}\"}}",
                    json::escape(namespace)
                ),
            )
        }
        Err(SubmitError::Full) => (
            503,
            "Service Unavailable",
            "{\"error\":\"intake queue full\",\"code\":\"full\"}".to_string(),
        ),
        Err(SubmitError::Closed) => (
            503,
            "Service Unavailable",
            "{\"error\":\"service closed\",\"code\":\"closed\"}".to_string(),
        ),
    }
}

fn poll_document(shared: &Arc<ServerShared>, id_text: &str) -> (u16, &'static str, String) {
    let Ok(id) = id_text.parse::<u64>() else {
        return (
            404,
            "Not Found",
            "{\"error\":\"unknown document\"}".to_string(),
        );
    };
    let mut registry = lock(&shared.registry);
    let Some(entry) = registry.get_mut(&id) else {
        return (
            404,
            "Not Found",
            "{\"error\":\"unknown document\"}".to_string(),
        );
    };
    if entry.done.is_none() {
        if let Some(result) = entry.ticket.try_take() {
            entry.done = Some(result.map_err(|e| e.to_string()));
        }
    }
    let body = match &entry.done {
        None => format!("{{\"id\":{id},\"status\":\"pending\"}}"),
        Some(Err(message)) => format!(
            "{{\"id\":{id},\"status\":\"failed\",\"error\":\"{}\"}}",
            json::escape(message)
        ),
        Some(Ok(report)) => report_json(id, report),
    };
    (200, "OK", body)
}

fn cancel_document(shared: &Arc<ServerShared>, id_text: &str) -> (u16, &'static str, String) {
    let Ok(id) = id_text.parse::<u64>() else {
        return (
            404,
            "Not Found",
            "{\"error\":\"unknown document\"}".to_string(),
        );
    };
    let registry = lock(&shared.registry);
    let Some(entry) = registry.get(&id) else {
        return (
            404,
            "Not Found",
            "{\"error\":\"unknown document\"}".to_string(),
        );
    };
    entry.ticket.cancel();
    (200, "OK", format!("{{\"id\":{id},\"cancelled\":true}}"))
}

/// Finite floats print bare; NaN/inf have no JSON spelling and become
/// null.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn report_json(id: u64, report: &VerificationReport) -> String {
    let claims: Vec<String> = report
        .claims
        .iter()
        .enumerate()
        .map(|(index, claim)| {
            let best = claim
                .top_queries
                .first()
                .map(|q| format!("\"{}\"", json::escape(&q.description)))
                .unwrap_or_else(|| "null".to_string());
            format!(
                "{{\"index\":{index},\"sentence\":\"{}\",\"claimed_value\":{},\"verdict\":\"{}\",\"correctness_probability\":{},\"best_query\":{best}}}",
                json::escape(&claim.sentence),
                num(claim.claimed_value),
                protocol::verdict_name(claim.verdict),
                num(claim.correctness_probability),
            )
        })
        .collect();
    let stats = &report.stats;
    format!(
        "{{\"id\":{id},\"status\":\"{}\",\"claims\":[{}],\"stats\":{{\"claims\":{},\"em_iterations\":{},\"candidates_evaluated\":{},\"rows_scanned\":{},\"scan_passes\":{},\"blocks_scanned\":{},\"blocks_skipped\":{},\"bytes_scanned\":{},\"partitions_scanned\":{},\"partition_merges\":{},\"partition_parallelism\":{},\"grids_patched\":{},\"delta_rows_scanned\":{}}},\"fingerprint\":\"{}\"}}",
        protocol::status_name(report.status),
        claims.join(","),
        stats.claims,
        stats.em_iterations,
        stats.candidates_evaluated,
        stats.rows_scanned,
        stats.scan_passes,
        stats.blocks_scanned,
        stats.blocks_skipped,
        stats.bytes_scanned,
        stats.partitions_scanned,
        stats.partition_merges,
        stats.partition_parallelism,
        stats.grids_patched,
        stats.delta_rows_scanned,
        json::escape(&report.content_fingerprint()),
    )
}

fn stats_json(shared: &Arc<ServerShared>) -> String {
    let c = &shared.counters;
    let mut names: Vec<&String> = shared.namespaces.keys().collect();
    names.sort();
    let namespaces: Vec<String> = names
        .into_iter()
        .map(|name| {
            let service = &shared.namespaces[name];
            let s = service.stats();
            let lanes: Vec<String> = service
                .lane_depths()
                .into_iter()
                .map(|(lane, depth)| format!("{{\"lane\":{lane},\"depth\":{depth}}}"))
                .collect();
            format!(
                "\"{}\":{{\"submitted\":{},\"completed\":{},\"failed\":{},\"rejected\":{},\"timed_out\":{},\"cancelled\":{},\"partial\":{},\"respawns\":{},\"poison_retries\":{},\"queue_depth_high_water\":{},\"in_flight_high_water\":{},\"claims\":{},\"rows_scanned\":{},\"tasks_executed\":{},\"tasks_deduped\":{},\"singleflight_waits\":{},\"scan_passes\":{},\"blocks_scanned\":{},\"blocks_skipped\":{},\"bytes_scanned\":{},\"partitions_scanned\":{},\"partition_merges\":{},\"partition_parallelism\":{},\"grids_patched\":{},\"delta_rows_scanned\":{},\"queue_depth\":{},\"in_flight\":{},\"lanes\":[{}]}}",
                json::escape(name),
                s.submitted,
                s.completed,
                s.failed,
                s.rejected,
                s.timed_out,
                s.cancelled,
                s.partial,
                s.respawns,
                s.poison_retries,
                s.queue_depth_high_water,
                s.in_flight_high_water,
                s.claims,
                s.rows_scanned,
                s.tasks_executed,
                s.tasks_deduped,
                s.singleflight_waits,
                s.scan_passes,
                s.blocks_scanned,
                s.blocks_skipped,
                s.bytes_scanned,
                s.partitions_scanned,
                s.partition_merges,
                s.partition_parallelism,
                s.grids_patched,
                s.delta_rows_scanned,
                service.queue_depth(),
                service.in_flight(),
                lanes.join(","),
            )
        })
        .collect();
    format!(
        "{{\"connections\":{},\"open_connections\":{},\"http_requests\":{},\"frames_in\":{},\"frames_out\":{},\"malformed_frames\":{},\"namespaces\":{{{}}}}}",
        c.connections.load(Ordering::SeqCst),
        c.open_connections.load(Ordering::SeqCst),
        c.http_requests.load(Ordering::SeqCst),
        c.frames_in.load(Ordering::SeqCst),
        c.frames_out.load(Ordering::SeqCst),
        c.malformed_frames.load(Ordering::SeqCst),
        namespaces.join(","),
    )
}

// --- binary front-end -------------------------------------------------

/// What a handled frame means for the session loop.
enum Flow {
    Continue,
    /// `Goodbye`: finish streaming outstanding results, then close.
    Drain,
    /// Protocol violation or disconnect: cancel outstanding, then close.
    Abort,
}

struct BinarySession<'s> {
    shared: &'s Arc<ServerShared>,
    service: Arc<StreamingVerifier>,
    conn_id: u64,
    tx: mpsc::Sender<OutMsg>,
    outstanding: Arc<Mutex<HashMap<u64, Arc<Ticket>>>>,
    watchers: Vec<JoinHandle<()>>,
}

impl BinarySession<'_> {
    fn send(&self, op: Opcode, payload: Vec<u8>) {
        let _ = self.tx.send(Some((op, payload)));
    }

    fn handle(&mut self, frame: &protocol::Frame) -> Flow {
        match Opcode::from_u8(frame.opcode) {
            Some(Opcode::Submit) => self.handle_submit(&frame.payload),
            Some(Opcode::Cancel) => self.handle_cancel(&frame.payload),
            Some(Opcode::Stats) => {
                self.send(Opcode::StatsOk, protocol::stats_ok(&self.wire_stats()));
                Flow::Continue
            }
            Some(Opcode::Goodbye) => Flow::Drain,
            Some(Opcode::Hello) | Some(_) | None => {
                // A second Hello, a server→client opcode, or a number
                // outside the table: the stream is out of sync.
                self.send(
                    Opcode::Error,
                    protocol::error(
                        errcode::UNKNOWN_OPCODE,
                        &format!("unexpected opcode 0x{:02x}", frame.opcode),
                    ),
                );
                Flow::Abort
            }
        }
    }

    fn handle_submit(&mut self, payload: &[u8]) -> Flow {
        let Ok((doc, deadline_ms, text)) = protocol::parse_submit(payload) else {
            return self.malformed("submit payload does not decode");
        };
        if lock(&self.outstanding).contains_key(&doc) {
            self.send(
                Opcode::Rejected,
                protocol::rejected(
                    doc,
                    errcode::DUPLICATE_DOC,
                    "document id already outstanding",
                ),
            );
            return Flow::Continue;
        }
        let opts = SubmitOptions {
            deadline: (deadline_ms > 0)
                .then(|| Instant::now() + Duration::from_millis(deadline_ms)),
            lane: self.conn_id,
            observer: Some(Arc::new(FrameObserver {
                doc,
                tx: Mutex::new(self.tx.clone()),
            })),
        };
        match self.service.submit_text_with(&text, opts) {
            Ok(ticket) => {
                let ticket = Arc::new(ticket);
                lock(&self.outstanding).insert(doc, Arc::clone(&ticket));
                self.send(Opcode::Accepted, protocol::doc_id(doc));
                let tx = self.tx.clone();
                let outstanding = Arc::clone(&self.outstanding);
                let watcher = thread::Builder::new()
                    .name(format!("verifyd-watch-{}-{doc}", self.conn_id))
                    .spawn(move || {
                        match ticket.wait_ref() {
                            Ok(report) => {
                                for (index, claim) in report.claims.iter().enumerate() {
                                    let _ = tx.send(Some((
                                        Opcode::ClaimVerdict,
                                        protocol::claim_verdict(doc, index as u32, claim),
                                    )));
                                }
                                let _ = tx.send(Some((
                                    Opcode::Complete,
                                    protocol::complete(doc, report.status, &report.stats),
                                )));
                            }
                            Err(e) => {
                                let _ = tx.send(Some((
                                    Opcode::Rejected,
                                    protocol::rejected(doc, errcode::VERIFY_FAILED, &e.to_string()),
                                )));
                            }
                        }
                        lock(&outstanding).remove(&doc);
                    })
                    .expect("spawn watcher thread");
                self.watchers.push(watcher);
            }
            Err(SubmitError::Full) => self.send(
                Opcode::Rejected,
                protocol::rejected(doc, errcode::FULL, "intake queue (or lane) full"),
            ),
            Err(SubmitError::Closed) => self.send(
                Opcode::Rejected,
                protocol::rejected(doc, errcode::CLOSED, "service closed"),
            ),
        }
        Flow::Continue
    }

    fn handle_cancel(&mut self, payload: &[u8]) -> Flow {
        let Ok(doc) = protocol::parse_doc_id(payload) else {
            return self.malformed("cancel payload does not decode");
        };
        match lock(&self.outstanding).get(&doc) {
            // The watcher announces the outcome: a Complete frame with
            // Cancelled (or Complete, if the race was lost) status.
            Some(ticket) => ticket.cancel(),
            None => self.send(
                Opcode::Rejected,
                protocol::rejected(doc, errcode::UNKNOWN_DOC, "document not outstanding here"),
            ),
        }
        Flow::Continue
    }

    fn malformed(&self, message: &str) -> Flow {
        self.shared
            .counters
            .malformed_frames
            .fetch_add(1, Ordering::SeqCst);
        self.send(Opcode::Error, protocol::error(errcode::BAD_FRAME, message));
        Flow::Abort
    }

    fn wire_stats(&self) -> WireStats {
        let c = &self.shared.counters;
        WireStats {
            stream: self.service.stats(),
            queue_depth: self.service.queue_depth() as u64,
            in_flight: self.service.in_flight() as u64,
            lane_depths: self
                .service
                .lane_depths()
                .into_iter()
                .map(|(lane, depth)| (lane, depth as u64))
                .collect(),
            connections: c.connections.load(Ordering::SeqCst),
            frames_in: c.frames_in.load(Ordering::SeqCst),
            frames_out: c.frames_out.load(Ordering::SeqCst),
            malformed_frames: c.malformed_frames.load(Ordering::SeqCst),
        }
    }
}

fn serve_binary(shared: &Arc<ServerShared>, stream: TcpStream, conn_id: u64, buffered: Vec<u8>) {
    let Ok(writer_stream) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<OutMsg>();
    let writer_shared = Arc::clone(shared);
    let writer = thread::Builder::new()
        .name(format!("verifyd-write-{conn_id}"))
        .spawn(move || {
            let mut stream = writer_stream;
            let mut dead = false;
            while let Ok(msg) = rx.recv() {
                let Some((op, payload)) = msg else { break };
                if dead {
                    continue;
                }
                if protocol::write_frame(&mut stream, op, &payload).is_err() {
                    dead = true;
                    continue;
                }
                writer_shared
                    .counters
                    .frames_out
                    .fetch_add(1, Ordering::SeqCst);
            }
        })
        .expect("spawn writer thread");

    let mut reader = FrameReader::with_buffered(buffered);
    let mut read_ref = &stream;
    let service = binary_handshake(shared, &mut reader, &mut read_ref, &tx, conn_id);
    let mut abort = false;
    if let Some(service) = service {
        let mut session = BinarySession {
            shared,
            service,
            conn_id,
            tx: tx.clone(),
            outstanding: Arc::new(Mutex::new(HashMap::new())),
            watchers: Vec::new(),
        };
        let mut last_activity = Instant::now();
        loop {
            match reader.read_from(&mut read_ref) {
                Ok(ReadOutcome::Frame(frame)) => {
                    last_activity = Instant::now();
                    shared.counters.frames_in.fetch_add(1, Ordering::SeqCst);
                    match session.handle(&frame) {
                        Flow::Continue => {}
                        Flow::Drain => break,
                        Flow::Abort => {
                            abort = true;
                            break;
                        }
                    }
                }
                // Disconnect with work outstanding: settle the tickets
                // so nothing leaks (the watchers observe cancellation).
                Ok(ReadOutcome::Eof) => {
                    abort = true;
                    break;
                }
                Ok(ReadOutcome::Idle) => {
                    let nothing_outstanding = lock(&session.outstanding).is_empty();
                    if nothing_outstanding
                        && (shared.shutdown.load(Ordering::SeqCst)
                            || last_activity.elapsed() > shared.config.idle_timeout)
                    {
                        break;
                    }
                }
                Err(_) => {
                    shared
                        .counters
                        .malformed_frames
                        .fetch_add(1, Ordering::SeqCst);
                    session.send(
                        Opcode::Error,
                        protocol::error(errcode::BAD_FRAME, "malformed frame"),
                    );
                    abort = true;
                    break;
                }
            }
        }
        if abort {
            for ticket in lock(&session.outstanding).values() {
                ticket.cancel();
            }
        }
        // Either way, wait for every outstanding document to settle and
        // its frames to be queued (Drain streams them; Abort settles
        // fast via the cancellations above).
        for watcher in session.watchers.drain(..) {
            watcher.join().ok();
        }
    }
    let _ = tx.send(None);
    writer.join().ok();
}

/// First frame must be a valid `Hello` for a served namespace; answers
/// `HelloOk` and returns the session's service, or answers `Error` and
/// returns `None`.
fn binary_handshake(
    shared: &Arc<ServerShared>,
    reader: &mut FrameReader,
    read_ref: &mut &TcpStream,
    tx: &mpsc::Sender<OutMsg>,
    conn_id: u64,
) -> Option<Arc<StreamingVerifier>> {
    let send = |op: Opcode, payload: Vec<u8>| {
        let _ = tx.send(Some((op, payload)));
    };
    let started = Instant::now();
    let frame = loop {
        match reader.read_from(read_ref) {
            Ok(ReadOutcome::Frame(frame)) => break frame,
            Ok(ReadOutcome::Eof) => return None,
            Ok(ReadOutcome::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst)
                    || started.elapsed() > shared.config.idle_timeout
                {
                    return None;
                }
            }
            Err(_) => {
                shared
                    .counters
                    .malformed_frames
                    .fetch_add(1, Ordering::SeqCst);
                send(
                    Opcode::Error,
                    protocol::error(errcode::BAD_FRAME, "malformed frame"),
                );
                return None;
            }
        }
    };
    shared.counters.frames_in.fetch_add(1, Ordering::SeqCst);
    if frame.opcode != Opcode::Hello as u8 {
        send(
            Opcode::Error,
            protocol::error(errcode::BAD_FRAME, "first frame must be Hello"),
        );
        return None;
    }
    let namespace = match protocol::parse_hello(&frame.payload) {
        Ok(namespace) => namespace,
        Err((code, message)) => {
            if code == errcode::BAD_FRAME {
                shared
                    .counters
                    .malformed_frames
                    .fetch_add(1, Ordering::SeqCst);
            }
            send(Opcode::Error, protocol::error(code, &message));
            return None;
        }
    };
    let Some(service) = shared.namespaces.get(&namespace) else {
        send(
            Opcode::Error,
            protocol::error(
                errcode::UNKNOWN_NAMESPACE,
                &format!("namespace \"{namespace}\" is not served here"),
            ),
        );
        return None;
    };
    send(Opcode::HelloOk, protocol::hello_ok(conn_id));
    Some(Arc::clone(service))
}
