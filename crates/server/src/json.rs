//! Minimal JSON value, parser, and string escaper for the HTTP/1.1
//! front-end. The build environment has no crates.io access (the `serde`
//! shim is marker-only), so both directions are hand-rolled: responses
//! are formatted with `format!` + [`escape`], request bodies are parsed
//! with this recursive-descent reader.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects keep insertion order irrelevant —
/// lookups go through [`Json::get`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integral numbers only.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// A syntax error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

/// Escape a string for embedding inside a JSON string literal (quotes
/// not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired:
                            // the server never emits them and no document
                            // field needs them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc =
            parse(r#"{"text": "a \"b\" c", "deadline_ms": 250, "tags": [1, 2.5, null, true]}"#)
                .unwrap();
        assert_eq!(doc.get("text").and_then(Json::as_str), Some("a \"b\" c"));
        assert_eq!(doc.get("deadline_ms").and_then(Json::as_u64), Some(250));
        match doc.get("tags") {
            Some(Json::Arr(items)) => {
                assert_eq!(items.len(), 4);
                assert_eq!(items[1], Json::Num(2.5));
                assert_eq!(items[2], Json::Null);
                assert_eq!(items[3], Json::Bool(true));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse(r#"{"a": 1} trailing"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("01x").is_err());
    }

    #[test]
    fn as_u64_is_strict() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("\"3\"").unwrap().as_u64(), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line1\nline2\t\"quoted\" \\ and \u{1} control";
        let literal = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&literal).unwrap(), Json::Str(nasty.to_string()));
    }
}
