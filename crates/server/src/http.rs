//! Just enough HTTP/1.1 for the JSON API: an incremental request reader
//! that tolerates read timeouts (the server's liveness poll) and a
//! response writer. Persistent connections are the default
//! (`Connection: close` opts out); bodies are `Content-Length`-framed
//! only — no chunked transfer encoding, which no client of this API
//! needs for small JSON documents.

use std::collections::HashMap;
use std::io::{self, Read, Write};

/// Largest accepted header block + body. Documents are text summaries,
/// not uploads; anything bigger is a client error.
pub const MAX_REQUEST_LEN: usize = 16 * 1024 * 1024;

/// One parsed request. Header names are lowercased.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: HashMap<String, String>,
    pub body: Vec<u8>,
}

impl Request {
    /// Did the client ask to drop the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// What one [`HttpReader::read_from`] call produced.
#[derive(Debug)]
pub enum HttpOutcome {
    Request(Request),
    /// Peer closed the connection.
    Eof,
    /// Read timed out with no complete request buffered.
    Idle,
}

/// Incremental request decoder; partial requests stay buffered across
/// read timeouts.
#[derive(Debug, Default)]
pub struct HttpReader {
    buf: Vec<u8>,
}

impl HttpReader {
    pub fn new() -> HttpReader {
        HttpReader::default()
    }

    /// Seed the buffer with bytes already read (protocol sniffing).
    pub fn with_buffered(buf: Vec<u8>) -> HttpReader {
        HttpReader { buf }
    }

    fn try_pop(&mut self) -> io::Result<Option<Request>> {
        let Some(head_end) = find_subslice(&self.buf, b"\r\n\r\n") else {
            if self.buf.len() > MAX_REQUEST_LEN {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "request header block too large",
                ));
            }
            return Ok(None);
        };
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 request head"))?
            .to_string();
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split_whitespace();
        let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed request line",
            ));
        };
        let mut headers = HashMap::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
            }
        }
        let content_length: usize = match headers.get("content-length") {
            Some(v) => v.parse().map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "malformed Content-Length")
            })?,
            None => 0,
        };
        if content_length > MAX_REQUEST_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request body too large",
            ));
        }
        let body_start = head_end + 4;
        if self.buf.len() < body_start + content_length {
            return Ok(None);
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        let request = Request {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body,
        };
        self.buf.drain(..body_start + content_length);
        Ok(Some(request))
    }

    /// Read until one complete request is available (or EOF / timeout).
    pub fn read_from(&mut self, r: &mut impl Read) -> io::Result<HttpOutcome> {
        loop {
            if let Some(request) = self.try_pop()? {
                return Ok(HttpOutcome::Request(request));
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => return Ok(HttpOutcome::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(HttpOutcome::Idle)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Write one response (status line, minimal headers, body) and flush.
pub fn respond(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len(),
    )?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body_and_keeps_pipelined_bytes() {
        let raw = b"POST /v1/documents HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbodyGET /v1/stats HTTP/1.1\r\n\r\n";
        let mut reader = HttpReader::new();
        let mut cursor = &raw[..];
        let first = match reader.read_from(&mut cursor).unwrap() {
            HttpOutcome::Request(r) => r,
            other => panic!("expected request, got {other:?}"),
        };
        assert_eq!(first.method, "POST");
        assert_eq!(first.path, "/v1/documents");
        assert_eq!(first.body, b"body");
        assert!(!first.wants_close());
        let second = match reader.read_from(&mut cursor).unwrap() {
            HttpOutcome::Request(r) => r,
            other => panic!("expected request, got {other:?}"),
        };
        assert_eq!(
            (second.method.as_str(), second.path.as_str()),
            ("GET", "/v1/stats")
        );
        assert!(matches!(
            reader.read_from(&mut cursor).unwrap(),
            HttpOutcome::Eof
        ));
    }

    #[test]
    fn byte_at_a_time_delivery_completes() {
        let raw = b"GET /v1/stats HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = HttpReader::new();
        for (i, b) in raw.iter().enumerate() {
            let mut one = &[*b][..];
            if let HttpOutcome::Request(r) = reader.read_from(&mut one).unwrap() {
                assert_eq!(i, raw.len() - 1);
                assert!(r.wants_close());
                return;
            }
        }
        panic!("request never completed");
    }

    #[test]
    fn malformed_heads_are_invalid_data() {
        let mut reader = HttpReader::with_buffered(b"NOT-A-REQUEST\r\n\r\n".to_vec());
        assert!(reader.read_from(&mut &[][..]).is_err());
        let mut reader =
            HttpReader::with_buffered(b"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n".to_vec());
        assert!(reader.read_from(&mut &[][..]).is_err());
    }

    #[test]
    fn respond_writes_a_framed_response() {
        let mut out = Vec::new();
        respond(&mut out, 404, "Not Found", "{\"error\":\"x\"}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Length: 13\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"error\":\"x\"}"));
    }
}
