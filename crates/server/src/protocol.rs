//! The length-prefixed binary protocol — frame codec and payload
//! encoders/decoders shared by [`crate::VerifyServer`] and
//! [`crate::client::BinaryClient`].
//!
//! `docs/protocol.md` is the normative specification of everything in
//! this module; the CI `docs-gate` (`cargo run -p xtask -- docs-gate`)
//! fails the build if the opcode table there drifts from the [`Opcode`]
//! enum here. The byte-level encodings of reports reuse
//! [`agg_core::report::wire`], so a report reassembled from frames is
//! bit-identical to the in-process original.
//!
//! # Frame layout
//!
//! ```text
//! [len: u32 LE] [opcode: u8] [payload: (len - 1) bytes]
//! ```
//!
//! `len` counts the opcode byte plus the payload, never itself; a frame
//! with `len == 0` or `len > MAX_FRAME_LEN` is malformed and closes the
//! connection. All integers are little-endian; all floats are IEEE-754
//! bit patterns ([`wire::put_f64`]); all strings are u32-length-prefixed
//! UTF-8 ([`wire::put_str`]).

use agg_core::report::wire::{self, WireError};
use agg_core::{CheckedClaim, Verdict};
use agg_core::{ClaimProgress, ReportStatus, RunStats, StreamStats};
use std::io::{self, Read, Write};

/// First four bytes of every `Hello` payload.
pub const MAGIC: [u8; 4] = *b"AGGV";

/// Protocol version spoken by this build (in `Hello` and `HelloOk`).
pub const VERSION: u8 = 1;

/// Upper bound on one frame's `len` field. Far above any real document
/// or report; a bigger length is a malformed (or hostile) frame.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Every frame type. Client→server opcodes are `0x01..=0x7F`;
/// server→client opcodes have the high bit set (`0x81..=0xFF`). The
/// table in `docs/protocol.md` must list exactly these names and values
/// (the CI docs-gate scrapes both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Client handshake: magic, version, namespace.
    Hello = 0x01,
    /// Submit one document for verification.
    Submit = 0x02,
    /// Cancel a previously submitted document.
    Cancel = 0x03,
    /// Request a service + server counter snapshot.
    Stats = 0x04,
    /// Graceful end of session: the server finishes streaming results
    /// for every outstanding document, then closes the connection.
    Goodbye = 0x05,
    /// Handshake accepted: version, session id.
    HelloOk = 0x81,
    /// A submission entered the intake queue.
    Accepted = 0x82,
    /// Incremental per-wave verdict snapshot (pushed as evaluation waves
    /// complete; advisory — the `ClaimVerdict`/`Complete` frames carry
    /// the authoritative result).
    Progress = 0x83,
    /// One settled claim of a finished document, every field exact.
    ClaimVerdict = 0x84,
    /// A document finished: terminal status plus its `RunStats`.
    Complete = 0x85,
    /// Counter snapshot reply.
    StatsOk = 0x86,
    /// A submission (or cancel) was not accepted; carries an error code.
    Rejected = 0x87,
    /// Connection-level failure; the server closes after sending it.
    Error = 0x8F,
}

impl Opcode {
    /// Every opcode, in wire-value order.
    pub const ALL: [Opcode; 13] = [
        Opcode::Hello,
        Opcode::Submit,
        Opcode::Cancel,
        Opcode::Stats,
        Opcode::Goodbye,
        Opcode::HelloOk,
        Opcode::Accepted,
        Opcode::Progress,
        Opcode::ClaimVerdict,
        Opcode::Complete,
        Opcode::StatsOk,
        Opcode::Rejected,
        Opcode::Error,
    ];

    /// Decode a wire byte.
    pub fn from_u8(op: u8) -> Option<Opcode> {
        Opcode::ALL.iter().copied().find(|o| *o as u8 == op)
    }

    /// The identifier `docs/protocol.md` tabulates.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Hello => "Hello",
            Opcode::Submit => "Submit",
            Opcode::Cancel => "Cancel",
            Opcode::Stats => "Stats",
            Opcode::Goodbye => "Goodbye",
            Opcode::HelloOk => "HelloOk",
            Opcode::Accepted => "Accepted",
            Opcode::Progress => "Progress",
            Opcode::ClaimVerdict => "ClaimVerdict",
            Opcode::Complete => "Complete",
            Opcode::StatsOk => "StatsOk",
            Opcode::Rejected => "Rejected",
            Opcode::Error => "Error",
        }
    }
}

/// Error codes carried by `Rejected` and `Error` frames (also tabulated
/// in `docs/protocol.md`).
pub mod errcode {
    /// Intake queue (or the client's lane) is at capacity.
    pub const FULL: u8 = 1;
    /// The service is closed or draining; no new submissions.
    pub const CLOSED: u8 = 2;
    /// `Cancel` named a document id this session does not know.
    pub const UNKNOWN_DOC: u8 = 3;
    /// `Submit` reused a document id still outstanding on this session.
    pub const DUPLICATE_DOC: u8 = 4;
    /// Malformed frame: bad length, truncated payload, or a field that
    /// does not decode. The server closes the connection after `Error`.
    pub const BAD_FRAME: u8 = 5;
    /// `Hello` did not start with the `AGGV` magic.
    pub const BAD_MAGIC: u8 = 6;
    /// `Hello` requested a protocol version this server does not speak.
    pub const BAD_VERSION: u8 = 7;
    /// `Hello` named a namespace this server does not serve.
    pub const UNKNOWN_NAMESPACE: u8 = 8;
    /// Opcode outside the table, or a server→client opcode sent by a
    /// client.
    pub const UNKNOWN_OPCODE: u8 = 9;
    /// Verification itself failed; the message carries the error text.
    pub const VERIFY_FAILED: u8 = 10;
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub opcode: u8,
    pub payload: Vec<u8>,
}

/// Write one frame (length prefix, opcode, payload) and flush.
pub fn write_frame(w: &mut impl Write, opcode: Opcode, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32 + 1;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME_LEN",
        ));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[opcode as u8])?;
    w.write_all(payload)?;
    w.flush()
}

/// What one [`FrameReader::read_from`] call produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame.
    Frame(Frame),
    /// The peer closed the connection (any buffered partial frame is a
    /// truncation, reported as `Eof` all the same).
    Eof,
    /// The read timed out with no complete frame buffered — the caller's
    /// chance to check idle/shutdown conditions before retrying.
    Idle,
}

/// Incremental frame decoder over a byte stream. Survives read timeouts
/// mid-frame: partial bytes stay buffered across calls, so a socket with
/// a short `read_timeout` (the server's liveness poll) never tears a
/// frame.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Seed the buffer with bytes already read (protocol sniffing).
    pub fn with_buffered(buf: Vec<u8>) -> FrameReader {
        FrameReader { buf }
    }

    /// Pop one complete frame from the buffer, if present. A malformed
    /// length (`0` or `> MAX_FRAME_LEN`) is an `InvalidData` error.
    fn try_pop(&mut self) -> io::Result<Option<Frame>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed frame length {len}"),
            ));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let opcode = self.buf[4];
        let payload = self.buf[5..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Frame { opcode, payload }))
    }

    /// Read until one complete frame is available (or EOF / timeout).
    pub fn read_from(&mut self, r: &mut impl Read) -> io::Result<ReadOutcome> {
        loop {
            if let Some(frame) = self.try_pop()? {
                return Ok(ReadOutcome::Frame(frame));
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => return Ok(ReadOutcome::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(ReadOutcome::Idle)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

// --- payload codecs (one pair per frame type) -------------------------

/// `Hello`: magic, version, namespace.
pub fn hello(namespace: &str) -> Vec<u8> {
    let mut p = Vec::new();
    p.extend_from_slice(&MAGIC);
    wire::put_u8(&mut p, VERSION);
    wire::put_str(&mut p, namespace);
    p
}

/// Parse `Hello`; the error side is `(errcode, message)` ready for an
/// `Error` frame.
pub fn parse_hello(mut buf: &[u8]) -> Result<String, (u8, String)> {
    let bad = |msg: &str| (errcode::BAD_FRAME, msg.to_string());
    if buf.len() < 4 {
        return Err(bad("hello payload truncated"));
    }
    let (magic, rest) = buf.split_at(4);
    if magic != MAGIC {
        return Err((errcode::BAD_MAGIC, "hello magic is not AGGV".into()));
    }
    buf = rest;
    let version = wire::get_u8(&mut buf).map_err(|e| bad(&e.to_string()))?;
    if version != VERSION {
        return Err((
            errcode::BAD_VERSION,
            format!("protocol version {version} unsupported (server speaks {VERSION})"),
        ));
    }
    wire::get_str(&mut buf).map_err(|e| bad(&e.to_string()))
}

/// `HelloOk`: version, session id (also the client's intake lane).
pub fn hello_ok(session: u64) -> Vec<u8> {
    let mut p = Vec::new();
    wire::put_u8(&mut p, VERSION);
    wire::put_u64(&mut p, session);
    p
}

/// Parse `HelloOk` → session id.
pub fn parse_hello_ok(mut buf: &[u8]) -> Result<u64, WireError> {
    let _version = wire::get_u8(&mut buf)?;
    wire::get_u64(&mut buf)
}

/// `Submit`: client-chosen document id, deadline in ms (0 = none), text.
pub fn submit(doc: u64, deadline_ms: u64, text: &str) -> Vec<u8> {
    let mut p = Vec::new();
    wire::put_u64(&mut p, doc);
    wire::put_u64(&mut p, deadline_ms);
    wire::put_str(&mut p, text);
    p
}

/// Parse `Submit` → (doc id, deadline ms, text).
pub fn parse_submit(mut buf: &[u8]) -> Result<(u64, u64, String), WireError> {
    Ok((
        wire::get_u64(&mut buf)?,
        wire::get_u64(&mut buf)?,
        wire::get_str(&mut buf)?,
    ))
}

/// `Cancel` / `Accepted`: just the document id.
pub fn doc_id(doc: u64) -> Vec<u8> {
    let mut p = Vec::new();
    wire::put_u64(&mut p, doc);
    p
}

/// Parse a document-id-only payload.
pub fn parse_doc_id(mut buf: &[u8]) -> Result<u64, WireError> {
    wire::get_u64(&mut buf)
}

/// `Rejected`: document id, error code, message.
pub fn rejected(doc: u64, code: u8, message: &str) -> Vec<u8> {
    let mut p = Vec::new();
    wire::put_u64(&mut p, doc);
    wire::put_u8(&mut p, code);
    wire::put_str(&mut p, message);
    p
}

/// Parse `Rejected` → (doc id, code, message).
pub fn parse_rejected(mut buf: &[u8]) -> Result<(u64, u8, String), WireError> {
    Ok((
        wire::get_u64(&mut buf)?,
        wire::get_u8(&mut buf)?,
        wire::get_str(&mut buf)?,
    ))
}

/// `Error`: code, message (connection-level; no document id).
pub fn error(code: u8, message: &str) -> Vec<u8> {
    let mut p = Vec::new();
    wire::put_u8(&mut p, code);
    wire::put_str(&mut p, message);
    p
}

/// Parse `Error` → (code, message).
pub fn parse_error(mut buf: &[u8]) -> Result<(u8, String), WireError> {
    Ok((wire::get_u8(&mut buf)?, wire::get_str(&mut buf)?))
}

/// `Progress`: doc id, wave number, last-wave flag, then per-claim
/// (claim index, claimed value, verdict code, correctness probability).
pub fn progress(doc: u64, wave: u64, last: bool, claims: &[ClaimProgress]) -> Vec<u8> {
    let mut p = Vec::new();
    wire::put_u64(&mut p, doc);
    wire::put_u64(&mut p, wave);
    wire::put_bool(&mut p, last);
    wire::put_u32(&mut p, claims.len() as u32);
    for c in claims {
        wire::put_usize(&mut p, c.claim);
        wire::put_f64(&mut p, c.claimed_value);
        wire::put_u8(&mut p, wire::verdict_code(c.verdict));
        wire::put_f64(&mut p, c.correctness_probability);
    }
    p
}

/// Parse `Progress` → (doc id, wave, last, claims).
pub fn parse_progress(mut buf: &[u8]) -> Result<(u64, u64, bool, Vec<ClaimProgress>), WireError> {
    let doc = wire::get_u64(&mut buf)?;
    let wave = wire::get_u64(&mut buf)?;
    let last = wire::get_bool(&mut buf)?;
    let n = wire::get_u32(&mut buf)? as usize;
    let mut claims = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        claims.push(ClaimProgress {
            claim: wire::get_usize(&mut buf)?,
            claimed_value: wire::get_f64(&mut buf)?,
            verdict: wire::verdict_from(wire::get_u8(&mut buf)?)?,
            correctness_probability: wire::get_f64(&mut buf)?,
        });
    }
    Ok((doc, wave, last, claims))
}

/// `ClaimVerdict`: doc id, claim index, the full settled claim
/// ([`wire::put_claim`] — exact round trip, fingerprint-preserving).
pub fn claim_verdict(doc: u64, index: u32, claim: &CheckedClaim) -> Vec<u8> {
    let mut p = Vec::new();
    wire::put_u64(&mut p, doc);
    wire::put_u32(&mut p, index);
    wire::put_claim(&mut p, claim);
    p
}

/// Parse `ClaimVerdict` → (doc id, claim index, claim).
pub fn parse_claim_verdict(mut buf: &[u8]) -> Result<(u64, u32, CheckedClaim), WireError> {
    Ok((
        wire::get_u64(&mut buf)?,
        wire::get_u32(&mut buf)?,
        wire::get_claim(&mut buf)?,
    ))
}

/// `Complete`: doc id, terminal status code, the run's stats.
pub fn complete(doc: u64, status: ReportStatus, stats: &RunStats) -> Vec<u8> {
    let mut p = Vec::new();
    wire::put_u64(&mut p, doc);
    wire::put_u8(&mut p, wire::status_code(status));
    wire::put_stats(&mut p, stats);
    p
}

/// Parse `Complete` → (doc id, status, stats).
pub fn parse_complete(mut buf: &[u8]) -> Result<(u64, ReportStatus, RunStats), WireError> {
    Ok((
        wire::get_u64(&mut buf)?,
        wire::status_from(wire::get_u8(&mut buf)?)?,
        wire::get_stats(&mut buf)?,
    ))
}

/// The `StatsOk` snapshot: the namespace's [`StreamStats`], its live
/// queue/lane state, and the server-level connection counters
/// (`docs/operations.md` documents every field).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStats {
    pub stream: StreamStats,
    pub queue_depth: u64,
    pub in_flight: u64,
    pub lane_depths: Vec<(u64, u64)>,
    pub connections: u64,
    pub frames_in: u64,
    pub frames_out: u64,
    pub malformed_frames: u64,
}

/// `StatsOk`: every counter of [`WireStats`], in struct order.
pub fn stats_ok(s: &WireStats) -> Vec<u8> {
    let mut p = Vec::new();
    let st = &s.stream;
    for v in [
        st.submitted,
        st.completed,
        st.failed,
        st.rejected,
        st.timed_out,
        st.cancelled,
        st.partial,
        st.respawns,
        st.poison_retries,
        st.queue_depth_high_water,
        st.in_flight_high_water,
        st.claims,
        st.rows_scanned,
        st.tasks_executed,
        st.tasks_deduped,
        st.singleflight_waits,
        st.scan_passes,
        st.blocks_scanned,
        st.blocks_skipped,
        st.bytes_scanned,
        st.partitions_scanned,
        st.partition_merges,
        st.grids_patched,
        st.delta_rows_scanned,
    ] {
        wire::put_u64(&mut p, v);
    }
    wire::put_u32(&mut p, st.partition_parallelism);
    wire::put_u64(&mut p, s.queue_depth);
    wire::put_u64(&mut p, s.in_flight);
    wire::put_u32(&mut p, s.lane_depths.len() as u32);
    for (lane, depth) in &s.lane_depths {
        wire::put_u64(&mut p, *lane);
        wire::put_u64(&mut p, *depth);
    }
    wire::put_u64(&mut p, s.connections);
    wire::put_u64(&mut p, s.frames_in);
    wire::put_u64(&mut p, s.frames_out);
    wire::put_u64(&mut p, s.malformed_frames);
    p
}

/// Parse `StatsOk`.
pub fn parse_stats_ok(mut buf: &[u8]) -> Result<WireStats, WireError> {
    let buf = &mut buf;
    let stream = StreamStats {
        submitted: wire::get_u64(buf)?,
        completed: wire::get_u64(buf)?,
        failed: wire::get_u64(buf)?,
        rejected: wire::get_u64(buf)?,
        timed_out: wire::get_u64(buf)?,
        cancelled: wire::get_u64(buf)?,
        partial: wire::get_u64(buf)?,
        respawns: wire::get_u64(buf)?,
        poison_retries: wire::get_u64(buf)?,
        queue_depth_high_water: wire::get_u64(buf)?,
        in_flight_high_water: wire::get_u64(buf)?,
        claims: wire::get_u64(buf)?,
        rows_scanned: wire::get_u64(buf)?,
        tasks_executed: wire::get_u64(buf)?,
        tasks_deduped: wire::get_u64(buf)?,
        singleflight_waits: wire::get_u64(buf)?,
        scan_passes: wire::get_u64(buf)?,
        blocks_scanned: wire::get_u64(buf)?,
        blocks_skipped: wire::get_u64(buf)?,
        bytes_scanned: wire::get_u64(buf)?,
        partitions_scanned: wire::get_u64(buf)?,
        partition_merges: wire::get_u64(buf)?,
        grids_patched: wire::get_u64(buf)?,
        delta_rows_scanned: wire::get_u64(buf)?,
        partition_parallelism: wire::get_u32(buf)?,
    };
    let queue_depth = wire::get_u64(buf)?;
    let in_flight = wire::get_u64(buf)?;
    let n = wire::get_u32(buf)? as usize;
    let mut lane_depths = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        lane_depths.push((wire::get_u64(buf)?, wire::get_u64(buf)?));
    }
    Ok(WireStats {
        stream,
        queue_depth,
        in_flight,
        lane_depths,
        connections: wire::get_u64(buf)?,
        frames_in: wire::get_u64(buf)?,
        frames_out: wire::get_u64(buf)?,
        malformed_frames: wire::get_u64(buf)?,
    })
}

/// Map a [`Verdict`] to the lowercase identifier the HTTP JSON uses.
pub fn verdict_name(v: Verdict) -> &'static str {
    match v {
        Verdict::Correct => "correct",
        Verdict::Erroneous => "erroneous",
        Verdict::Unverifiable => "unverifiable",
        Verdict::Unverified => "unverified",
    }
}

/// Map a [`ReportStatus`] to the lowercase identifier the HTTP JSON uses.
pub fn status_name(s: ReportStatus) -> &'static str {
    match s {
        ReportStatus::Complete => "complete",
        ReportStatus::TimedOut => "timed_out",
        ReportStatus::Cancelled => "cancelled",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_core::Verdict;

    #[test]
    fn opcode_codes_are_stable_and_distinct() {
        // The numbers docs/protocol.md tabulates (and the docs-gate pins).
        assert_eq!(Opcode::Hello as u8, 0x01);
        assert_eq!(Opcode::Submit as u8, 0x02);
        assert_eq!(Opcode::Cancel as u8, 0x03);
        assert_eq!(Opcode::Stats as u8, 0x04);
        assert_eq!(Opcode::Goodbye as u8, 0x05);
        assert_eq!(Opcode::HelloOk as u8, 0x81);
        assert_eq!(Opcode::Accepted as u8, 0x82);
        assert_eq!(Opcode::Progress as u8, 0x83);
        assert_eq!(Opcode::ClaimVerdict as u8, 0x84);
        assert_eq!(Opcode::Complete as u8, 0x85);
        assert_eq!(Opcode::StatsOk as u8, 0x86);
        assert_eq!(Opcode::Rejected as u8, 0x87);
        assert_eq!(Opcode::Error as u8, 0x8F);
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_u8(op as u8), Some(op), "{op:?}");
        }
        assert_eq!(Opcode::from_u8(0x42), None);
    }

    #[test]
    fn frames_round_trip_through_the_reader() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, Opcode::Hello, &hello("default")).unwrap();
        write_frame(&mut bytes, Opcode::Stats, &[]).unwrap();
        let mut reader = FrameReader::new();
        let mut cursor = &bytes[..];
        let first = match reader.read_from(&mut cursor).unwrap() {
            ReadOutcome::Frame(f) => f,
            other => panic!("expected a frame, got {other:?}"),
        };
        assert_eq!(first.opcode, Opcode::Hello as u8);
        assert_eq!(parse_hello(&first.payload).unwrap(), "default");
        let second = match reader.read_from(&mut cursor).unwrap() {
            ReadOutcome::Frame(f) => f,
            other => panic!("expected a frame, got {other:?}"),
        };
        assert_eq!(second.opcode, Opcode::Stats as u8);
        assert!(second.payload.is_empty());
        assert!(matches!(
            reader.read_from(&mut cursor).unwrap(),
            ReadOutcome::Eof
        ));
    }

    #[test]
    fn reader_survives_byte_at_a_time_delivery() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, Opcode::Submit, &submit(7, 0, "hello")).unwrap();
        let mut reader = FrameReader::new();
        for (i, b) in bytes.iter().enumerate() {
            let mut one = &[*b][..];
            match reader.read_from(&mut one).unwrap() {
                ReadOutcome::Frame(f) => {
                    assert_eq!(i, bytes.len() - 1, "frame must complete on the last byte");
                    let (doc, deadline, text) = parse_submit(&f.payload).unwrap();
                    assert_eq!((doc, deadline, text.as_str()), (7, 0, "hello"));
                    return;
                }
                ReadOutcome::Eof => {} // the one-byte cursor drained
                ReadOutcome::Idle => panic!("blocking read never idles"),
            }
        }
        panic!("frame never completed");
    }

    #[test]
    fn malformed_lengths_are_invalid_data() {
        // len == 0
        let mut reader = FrameReader::with_buffered(vec![0, 0, 0, 0]);
        let err = reader.read_from(&mut &[][..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // len > MAX_FRAME_LEN
        let huge = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        let mut reader = FrameReader::with_buffered(huge);
        let err = reader.read_from(&mut &[][..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn hello_rejects_bad_magic_and_version() {
        let mut p = hello("default");
        p[0] = b'X';
        assert_eq!(parse_hello(&p).unwrap_err().0, errcode::BAD_MAGIC);
        let mut p = hello("default");
        p[4] = VERSION + 1;
        assert_eq!(parse_hello(&p).unwrap_err().0, errcode::BAD_VERSION);
        assert_eq!(parse_hello(&[1, 2]).unwrap_err().0, errcode::BAD_FRAME);
    }

    #[test]
    fn payloads_round_trip() {
        assert_eq!(parse_hello_ok(&hello_ok(42)).unwrap(), 42);
        assert_eq!(parse_doc_id(&doc_id(9)).unwrap(), 9);
        assert_eq!(
            parse_rejected(&rejected(3, errcode::FULL, "full")).unwrap(),
            (3, errcode::FULL, "full".to_string())
        );
        assert_eq!(
            parse_error(&error(errcode::BAD_FRAME, "oops")).unwrap(),
            (errcode::BAD_FRAME, "oops".to_string())
        );
        let claims = vec![ClaimProgress {
            claim: 0,
            claimed_value: 4.0,
            verdict: Verdict::Correct,
            correctness_probability: 0.75,
        }];
        let (doc, wave, last, decoded) = parse_progress(&progress(5, 2, true, &claims)).unwrap();
        assert_eq!((doc, wave, last), (5, 2, true));
        assert_eq!(decoded, claims);
        let stats = WireStats {
            stream: StreamStats {
                submitted: 8,
                completed: 7,
                rows_scanned: 5060,
                scan_passes: 11,
                partitions_scanned: 22,
                partition_merges: 14,
                partition_parallelism: 4,
                grids_patched: 3,
                delta_rows_scanned: 512,
                ..StreamStats::default()
            },
            queue_depth: 1,
            in_flight: 2,
            lane_depths: vec![(3, 4), (9, 1)],
            connections: 2,
            frames_in: 20,
            frames_out: 40,
            malformed_frames: 0,
        };
        assert_eq!(parse_stats_ok(&stats_ok(&stats)).unwrap(), stats);
    }
}
