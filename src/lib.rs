//! # aggchecker
//!
//! Facade crate for the AggChecker reproduction — *Verifying Text Summaries
//! of Relational Data Sets* (Jo, Trummer, Yu, Liu, Wang, Yu, Mehta;
//! SIGMOD 2019).
//!
//! ```
//! use aggchecker::{AggChecker, CheckerConfig};
//! use aggchecker::relational::csv::load_csv;
//! use aggchecker::relational::Database;
//!
//! let table = load_csv("sales", "region,amount\nwest,10\neast,20\n").unwrap();
//! let mut db = Database::new("sales");
//! db.add_table(table);
//! let checker = AggChecker::new(db, CheckerConfig::default()).unwrap();
//! let report = checker.check_text("<p>There were two sales regions.</p>").unwrap();
//! for claim in &report.claims {
//!     println!("{:?}: {}", claim.verdict, claim.sentence);
//! }
//! ```
//!
//! The subsystem crates are re-exported:
//!
//! * [`relational`] — columnar engine, CUBE operator, caching (PostgreSQL
//!   substitute),
//! * [`nlp`] — tokenizer, numerals, stemmer, synonyms, document structure
//!   (CoreNLP/WordNet substitute),
//! * [`ir`] — BM25 inverted index (Lucene substitute),
//! * [`core`] — the checker itself,
//! * [`server`] — networked front-end (`verifyd`): HTTP/JSON + binary
//!   protocol over the streaming verifier (see `docs/protocol.md`),
//! * [`corpus`] — synthetic test-case generator + the paper's examples,
//! * [`baselines`] — ClaimBuster-FM / NaLIR-style baselines.

pub use agg_baselines as baselines;
pub use agg_core as core;
pub use agg_corpus as corpus;
pub use agg_ir as ir;
pub use agg_nlp as nlp;
pub use agg_relational as relational;
pub use agg_server as server;

pub use agg_core::{
    AggChecker, BatchVerifier, CheckedClaim, CheckerConfig, IntakePolicy, RankedQuery,
    ReportStatus, StreamConfig, StreamStats, StreamingVerifier, SubmitError, Ticket, Verdict,
    VerificationReport,
};
