//! `verifyd` — serve verification over TCP (HTTP/JSON + binary
//! protocol) for one or more CSV data sets.
//!
//! ```text
//! verifyd <data.csv>... [--addr HOST:PORT] [--workers N] [--intake N]
//!         [--lane-capacity N] [--idle-timeout-secs N] [--dict <datadict.txt>]
//! ```
//!
//! Each CSV becomes one **namespace** (named after the file stem) with
//! its own database and streaming verifier — multi-tenant behind a
//! single port. Binary clients pick a namespace in `Hello`; HTTP clients
//! pass `"namespace"` per submission (defaulting to the first CSV). The
//! wire contract is `docs/protocol.md`; the runbook (every flag, every
//! counter) is `docs/operations.md`.

use aggchecker::relational::csv::load_csv;
use aggchecker::relational::datadict::{apply_data_dictionary, parse_data_dictionary};
use aggchecker::relational::Database;
use aggchecker::server::{ServerConfig, VerifyServer};
use aggchecker::{CheckerConfig, StreamConfig, StreamingVerifier};
use std::path::Path;
use std::process::exit;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_paths: Vec<String> = Vec::new();
    let mut dict_path: Option<String> = None;
    let mut addr = "127.0.0.1:4271".to_string();
    let mut server_cfg = ServerConfig::default();
    let mut stream_cfg = StreamConfig::default();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().unwrap_or_else(|| die("--addr needs HOST:PORT")),
            "--dict" => dict_path = it.next(),
            "--workers" => {
                stream_cfg.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--workers needs an integer"));
            }
            "--intake" => {
                stream_cfg.intake_capacity = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--intake needs a positive integer"));
            }
            "--lane-capacity" => {
                stream_cfg.lane_capacity = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--lane-capacity needs an integer (0 = off)"));
            }
            "--idle-timeout-secs" => {
                let secs: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--idle-timeout-secs needs an integer"));
                server_cfg.idle_timeout = Duration::from_secs(secs);
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: verifyd <data.csv>... [--addr HOST:PORT] [--workers N] [--intake N] \
                     [--lane-capacity N] [--idle-timeout-secs N] [--dict file]"
                );
                exit(0);
            }
            other => csv_paths.push(other.to_string()),
        }
    }
    if csv_paths.is_empty() {
        die("expected at least one <data.csv> argument");
    }

    let dict_entries = dict_path.map(|path| parse_data_dictionary(&read(&path)));
    let mut namespaces = Vec::new();
    for csv_path in &csv_paths {
        let name = Path::new(csv_path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("data")
            .to_string();
        let mut table = match load_csv(&name, &read(csv_path)) {
            Ok(t) => t,
            Err(e) => die(&format!("failed to load {csv_path}: {e}")),
        };
        if let Some(entries) = &dict_entries {
            apply_data_dictionary(&mut table, entries);
        }
        eprintln!(
            "namespace {name}: {} rows × {} columns",
            table.row_count(),
            table.column_count()
        );
        let mut db = Database::new(name.clone());
        db.add_table(table);
        let service = match StreamingVerifier::new(db, CheckerConfig::default(), stream_cfg.clone())
        {
            Ok(s) => s,
            Err(e) => die(&format!("cannot start verifier for {name}: {e}")),
        };
        namespaces.push((name, service));
    }

    let server = match VerifyServer::start(addr.as_str(), namespaces, server_cfg) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot bind {addr}: {e}")),
    };
    eprintln!(
        "verifyd listening on {} ({} worker threads per namespace; protocol v{})",
        server.local_addr(),
        if stream_cfg.workers == 0 {
            "auto".to_string()
        } else {
            stream_cfg.workers.to_string()
        },
        aggchecker::server::protocol::VERSION,
    );
    // Serve until killed; connections run on their own threads.
    loop {
        std::thread::park();
    }
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot read {path}: {e}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(2)
}
