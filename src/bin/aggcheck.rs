//! `aggcheck` — check a text document against a CSV data set.
//!
//! ```text
//! aggcheck <data.csv> <article.html|article.txt> [--dict <datadict.txt>]
//!          [--html out.html] [--json] [--hits N] [--p-true P]
//! ```
//!
//! Prints the ANSI-marked document plus a per-claim summary; `--html`
//! additionally writes the Figure 3-style HTML markup.

use aggchecker::core::report::{render_ansi, render_html, render_summary};
use aggchecker::nlp::structure::parse_document;
use aggchecker::relational::csv::load_csv;
use aggchecker::relational::datadict::{apply_data_dictionary, parse_data_dictionary};
use aggchecker::relational::Database;
use aggchecker::{AggChecker, CheckerConfig, Verdict};
use std::path::Path;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut dict_path: Option<String> = None;
    let mut html_out: Option<String> = None;
    let mut json = false;
    let mut cfg = CheckerConfig::default();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dict" => dict_path = it.next(),
            "--html" => html_out = it.next(),
            "--json" => json = true,
            "--hits" => {
                cfg.lucene_hits = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--hits needs a positive integer"));
            }
            "--p-true" => {
                cfg.p_true = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--p-true needs a probability"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: aggcheck <data.csv> <article> [--dict file] [--html out] [--json] [--hits N] [--p-true P]"
                );
                exit(0);
            }
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        die("expected exactly two arguments: <data.csv> <article>");
    }

    let csv_path = &positional[0];
    let text_path = &positional[1];
    let csv = read(csv_path);
    let text = read(text_path);

    let table_name = Path::new(csv_path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("data")
        .to_string();
    let mut table = match load_csv(&table_name, &csv) {
        Ok(t) => t,
        Err(e) => die(&format!("failed to load {csv_path}: {e}")),
    };
    if let Some(path) = dict_path {
        let entries = parse_data_dictionary(&read(&path));
        let applied = apply_data_dictionary(&mut table, &entries);
        eprintln!(
            "data dictionary: {applied}/{} entries applied",
            entries.len()
        );
    }
    eprintln!(
        "loaded {}: {} rows × {} columns",
        table_name,
        table.row_count(),
        table.column_count()
    );
    let mut db = Database::new(table_name);
    db.add_table(table);

    let checker = match AggChecker::new(db, cfg) {
        Ok(c) => c,
        Err(e) => die(&format!("configuration error: {e}")),
    };
    let doc = parse_document(&text);
    let report = match checker.check_document(&doc) {
        Ok(r) => r,
        Err(e) => die(&format!("verification failed: {e}")),
    };

    if json {
        print_json(&report, checker.db());
    } else {
        println!("{}", render_ansi(&doc, &report));
        println!("{}", render_summary(&report));
    }
    if let Some(out) = html_out {
        let html = render_html(&doc, &report);
        if let Err(e) = std::fs::write(&out, html) {
            die(&format!("cannot write {out}: {e}"));
        }
        eprintln!("wrote {out}");
    }
    eprintln!(
        "{} claims checked in {:.2?} ({} candidate queries evaluated); {} flagged",
        report.claims.len(),
        report.stats.elapsed,
        report.stats.candidates_evaluated,
        report.flagged().count()
    );
    // Exit code 1 when suspicious claims were found, like grep.
    if report.flagged().count() > 0 {
        exit(1);
    }
}

/// Minimal hand-rolled JSON output (claims, verdicts, top queries).
fn print_json(report: &aggchecker::VerificationReport, db: &Database) {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', " ")
    }
    println!("[");
    for (i, claim) in report.claims.iter().enumerate() {
        let verdict = match claim.verdict {
            Verdict::Correct => "correct",
            Verdict::Erroneous => "erroneous",
            Verdict::Unverifiable => "unverifiable",
            Verdict::Unverified => "unverified",
        };
        let top = claim
            .top_queries
            .iter()
            .take(5)
            .map(|rq| {
                format!(
                    "{{\"sql\":\"{}\",\"probability\":{:.6},\"result\":{},\"matches\":{}}}",
                    esc(&rq.query.to_sql(db)),
                    rq.probability,
                    rq.result
                        .map(|r| format!("{r}"))
                        .unwrap_or_else(|| "null".into()),
                    rq.matches
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "  {{\"claimed\":{},\"verdict\":\"{}\",\"p_correct\":{:.6},\"sentence\":\"{}\",\"top_queries\":[{}]}}{}",
            claim.claimed_value,
            verdict,
            claim.correctness_probability,
            esc(&claim.sentence),
            top,
            if i + 1 < report.claims.len() { "," } else { "" }
        );
    }
    println!("]");
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot read {path}: {e}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(2)
}
